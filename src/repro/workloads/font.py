"""Firefox font-rendering workload (paper §6.2): sandboxed
libgraphite re-flowing the text of a page ten times at multiple font
sizes (to defeat glyph caches).

Per glyph: a feature-table lookup, kerning-pair arithmetic, and an
advance-width accumulation; per (reflow x size): one sandbox
transition.  Paper numbers: guard pages 1823 ms, bounds 2022 ms, HFI
1677 ms (8.7% faster than guard pages).
"""

from __future__ import annotations

from typing import List

from ..wasm.ir import (
    BinOp,
    BinaryOp,
    Const,
    Function,
    HostCall,
    If,
    Cmp,
    Load,
    Loop,
    Module,
    Store,
    StoreGlobal,
)

MASK32 = 0xFFFF_FFFF

REFLOWS = 10
FONT_SIZES = 3
GLYPHS_PER_RUN = 90


def graphite_reflow(reflows: int = REFLOWS, sizes: int = FONT_SIZES,
                    glyphs: int = GLYPHS_PER_RUN) -> Module:
    glyph_ops: List = [
        # glyph id from the text buffer
        BinOp(BinaryOp.AND, "gi_a", "g", 0x3FF),
        Load("gid", "gi_a", size=1),
        # feature table lookup (2-level)
        BinOp(BinaryOp.SHL, "ft_a", "gid", 2),
        Load("feat", "ft_a", offset=1024, size=4),
        BinOp(BinaryOp.AND, "cls", "feat", 0xFF),
        # kerning against the previous glyph
        BinOp(BinaryOp.MUL, "kern_i", "prev_cls", 16),
        BinOp(BinaryOp.ADD, "kern_i", "kern_i", "cls"),
        BinOp(BinaryOp.AND, "kern_i", "kern_i", 0x7FF),
        Load("kern", "kern_i", offset=2048, size=1),
        # advance-width accumulation, scaled by font size
        BinOp(BinaryOp.SHR, "adv", "feat", 8),
        BinOp(BinaryOp.AND, "adv", "adv", 0xFFF),
        BinOp(BinaryOp.MUL, "adv", "adv", "size_px"),
        BinOp(BinaryOp.ADD, "adv", "adv", "kern"),
        BinOp(BinaryOp.ADD, "penx", "penx", "adv"),
        BinOp(BinaryOp.AND, "penx", "penx", MASK32),
        # line break check
        If("penx", Cmp.GT, 1 << 20, [
            Const("penx", 0),
            BinOp(BinaryOp.ADD, "lines", "lines", 1),
        ]),
        # positioned-glyph output
        BinOp(BinaryOp.SHL, "out_a", "g", 2),
        Store("out_a", "penx", offset=8192, size=4),
        BinOp(BinaryOp.ADD, "prev_cls", "cls", 0),
        BinOp(BinaryOp.ADD, "g", "g", 1),
    ]
    body: List = [
        Const("lines", 0),
        Loop(reflows, [
            Const("size_px", 11),
            Loop(sizes, [
                HostCall(host_cycles=15),    # render call per text run
                Const("g", 0),
                Const("penx", 0),
                Const("prev_cls", 0),
                Loop(glyphs, glyph_ops),
                BinOp(BinaryOp.ADD, "size_px", "size_px", 4),
            ]),
        ]),
        StoreGlobal("result", "lines"),
    ]
    tables = bytearray(4096)
    for i in range(1024):
        tables[i] = (i * 7 + 65) & 0xFF                 # text
    for g in range(256):
        word = ((g * 97 + 13) & 0xFF) | (((g * 29 + 400) & 0xFFF) << 8)
        tables[1024 + 4 * g:1024 + 4 * g + 4] = word.to_bytes(4, "little")
    for k in range(2048):
        tables[2048 + k % 2048] = (k * 3) & 0x1F
    return Module("graphite-reflow", [Function("main", body)],
                  globals=["result"], data=bytes(tables))
