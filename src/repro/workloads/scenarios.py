"""Production-traffic scenario matrix (ROADMAP item 2).

Three sustained-traffic scenarios built on the discrete-event serving
loop (:mod:`repro.runtime.serving`), each exercising a different cost
path of the OS/MPK/HFI stack:

* **NGINX connection churn** — the §6.4.2 native-sandboxing scenario
  at production intensity: every connection performs a TLS handshake,
  a few keep-alive requests, and a teardown, with a *fresh* sandbox
  per connection.  Per-connection setup/teardown cycles are measured
  from :class:`~repro.os.address_space.AddressSpace`
  (``mprotect``/``madvise_dontneed`` walks via
  :func:`~repro.runtime.serving.connection_lifecycle_costs`), and the
  per-crypto-call domain switches inside each request come from the
  one shared :class:`~repro.runtime.transitions.TransitionModel`
  formula (Kolosick et al.'s "one source of truth for transition
  costs").

* **Render pipelines** — the §6.2 Firefox workloads
  (``graphite_reflow``, ``jpeg_decode``) wrapped as batch job streams:
  per-job guest cycles are *executed, not estimated* — each (job,
  scheme) cell runs once on the Wasm toolchain under that scheme's
  real codegen, so register pressure, bounds checks, and serialized
  HFI transitions all land in the service time.

* **Domain-count scaling** — the Fig. 5-analogue sweep lives in
  :func:`repro.mpk.virtualize.measure_switch_costs`; this module only
  re-exports it for symmetry.

Every scenario produces *identical offered load per scheme* (same
arrival cycles, tenants, priorities) so the schemes' costs — never the
traffic — explain the differences, matching the paper's methodology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..params import DEFAULT_PARAMS, MachineParams
from ..runtime.serving import (
    POOLED_POP_CYCLES,
    MmppArrivals,
    PoissonArrivals,
    SchemeCosts,
    connection_lifecycle_costs,
)
from ..runtime.supervisor import Priority, Request
from .font import graphite_reflow
from .image import COMPRESSION_ROUNDS, RESOLUTIONS, jpeg_decode
from .nginx import FILE_SIZES, NginxModel

# ----------------------------------------------------------------------
# NGINX + OpenSSL connection churn
# ----------------------------------------------------------------------

#: Native-sandboxing schemes of the §6.4.2 scenario (guard pages don't
#: apply to native code — that axis lives in the render scenario).
CHURN_SCHEMES = ("unprotected", "hfi", "mpk")

#: Web-shaped file-size mix over Fig. 5's x-axis: mostly small objects,
#: a thin tail of large ones.
_FILE_SIZE_WEIGHTS = (2, 10, 14, 16, 14, 10, 6, 3, 1)

assert len(_FILE_SIZE_WEIGHTS) == len(FILE_SIZES)


@dataclass(frozen=True)
class ConnectionProfile:
    """One TLS connection's traffic shape (scheme-independent)."""

    index: int
    tenant: str
    priority: int
    arrival_cycle: int
    file_bytes: int
    keepalive_requests: int


def connection_service_cycles(model: NginxModel,
                              profile: ConnectionProfile,
                              scheme: str) -> int:
    """Core cycles one connection holds under ``scheme``.

    The first request pays the TLS handshake's crypto-call switches;
    keep-alive followers only pay the per-record calls.  All switch
    costs flow through the model's :class:`TransitionModel`, so every
    scheme prices its domain crossings from the same table.
    """
    per_request = model.request_cycles(profile.file_bytes, scheme)
    handshake = model.handshake_crypto_calls * model.switch_cost(scheme)
    followers = profile.keepalive_requests - 1
    return per_request + followers * (per_request - handshake)


def build_connection_profiles(n_connections: int, *, seed: int = 0,
                              load: float = 0.8, n_cores: int = 4,
                              tenants: int = 8,
                              arrival: str = "poisson",
                              keepalive: Tuple[int, int] = (1, 8),
                              high_fraction: float = 0.08,
                              low_fraction: float = 0.20,
                              params: MachineParams = DEFAULT_PARAMS,
                              ) -> List[ConnectionProfile]:
    """Seeded open-loop connection traffic, shared by every scheme.

    ``load`` is relative to the *unprotected* server's capacity (bare
    service time), so each scheme faces the identical stream and its
    protection overhead shows up as queueing/shedding, exactly like
    ``bench_serving``'s methodology.
    """
    model = NginxModel(params)
    rng = random.Random((seed << 8) ^ 0xC4A2)
    # expected connection cost under the unprotected scheme
    weights_total = sum(_FILE_SIZE_WEIGHTS)
    mean_keepalive = (keepalive[0] + keepalive[1]) / 2.0
    mean_request = sum(
        w * model.request_cycles(size, "unprotected")
        for w, size in zip(_FILE_SIZE_WEIGHTS, FILE_SIZES)) / weights_total
    mean_connection = mean_keepalive * mean_request
    mean_gap = mean_connection / (max(1e-9, load) * n_cores)
    if arrival == "mmpp":
        process = MmppArrivals(mean_gap * 2.2, seed=seed)
    else:
        process = PoissonArrivals(mean_gap, seed=seed)
    profiles: List[ConnectionProfile] = []
    clock = 0
    for index, gap in enumerate(process.interarrivals(n_connections)):
        clock += gap
        draw = rng.random()
        priority = (Priority.HIGH if draw < high_fraction
                    else Priority.LOW if draw < high_fraction + low_fraction
                    else Priority.NORMAL)
        profiles.append(ConnectionProfile(
            index=index,
            tenant=f"tenant-{rng.randrange(tenants)}",
            priority=priority,
            arrival_cycle=clock,
            file_bytes=rng.choices(FILE_SIZES,
                                   weights=_FILE_SIZE_WEIGHTS)[0],
            keepalive_requests=rng.randint(*keepalive)))
    return profiles


def churn_requests(profiles: Sequence[ConnectionProfile], scheme: str,
                   params: MachineParams = DEFAULT_PARAMS,
                   ) -> List[Request]:
    """Materialize one scheme's request stream over shared profiles."""
    model = NginxModel(params)
    return [Request(index=p.index, tenant=p.tenant,
                    service_cycles=connection_service_cycles(model, p,
                                                             scheme),
                    priority=p.priority, arrival_cycle=p.arrival_cycle)
            for p in profiles]


def churn_scheme_costs(scheme: str, *, heap_bytes: int = 1 << 16,
                       touched_bytes: int = 16 * 1024,
                       params: MachineParams = DEFAULT_PARAMS,
                       ) -> SchemeCosts:
    """Per-connection serving costs for the churn scenario.

    Transition round trips are already inside the request service
    cycles (they happen per crypto call, not per connection), so
    ``transition_cycles`` is 0 here; what the serving loop charges is
    the *sandbox lifecycle* — measured mmap/mprotect setup at accept
    and madvise teardown at close, plus the pkey tag/untag syscalls
    for MPK.
    """
    if scheme == "unprotected":
        setup, teardown = connection_lifecycle_costs(
            "native-unsafe", heap_bytes=heap_bytes,
            touched_bytes=touched_bytes, params=params)
        return SchemeCosts(name="unprotected",
                           strategy_name="native-unsafe",
                           transition_cycles=0,
                           dispatch_cycles=POOLED_POP_CYCLES,
                           batch_teardown=True,
                           setup_cycles=setup, teardown_cycles=teardown)
    if scheme == "hfi":
        setup, teardown = connection_lifecycle_costs(
            "native-hfi", heap_bytes=heap_bytes,
            touched_bytes=touched_bytes, params=params)
        # staging the implicit-region descriptors is three stores
        setup += 3 * (params.base_cycles + params.l1d_hit_cycles)
        return SchemeCosts(name="hfi", strategy_name="native-hfi",
                           transition_cycles=0,
                           dispatch_cycles=POOLED_POP_CYCLES,
                           batch_teardown=True,
                           setup_cycles=setup, teardown_cycles=teardown)
    if scheme == "mpk":
        setup, teardown = connection_lifecycle_costs(
            "native-unsafe", heap_bytes=heap_bytes,
            touched_bytes=touched_bytes, tag_pkey=True, params=params)
        return SchemeCosts(name="mpk", strategy_name="native-unsafe",
                           transition_cycles=0,
                           dispatch_cycles=(POOLED_POP_CYCLES
                                            + params.wrpkru_cycles),
                           batch_teardown=True,
                           setup_cycles=setup, teardown_cycles=teardown)
    raise ValueError(f"unknown churn scheme {scheme!r}; "
                     f"known: {CHURN_SCHEMES}")


# ----------------------------------------------------------------------
# batch render pipelines (font + image)
# ----------------------------------------------------------------------

#: The Fig. 4/§6.2 compiler schemes — here the *codegen* differs, so
#: guest cycles are measured by running each job under each scheme.
RENDER_SCHEMES = ("hfi", "guard-pages", "bounds-check")

#: job name -> wir module builder; the bench runs the full image grid,
#: tests can pass a trimmed subset.
RENDER_JOBS: Dict[str, Callable] = {
    "font/reflow": graphite_reflow,
    **{f"image/{res}-{comp}":
       (lambda res=res, comp=comp: jpeg_decode(res, comp))
       for comp in COMPRESSION_ROUNDS for res in RESOLUTIONS},
}


def measure_render_jobs(jobs: Optional[Dict[str, Callable]] = None,
                        schemes: Sequence[str] = RENDER_SCHEMES,
                        max_instructions: int = 30_000_000,
                        ) -> Dict[str, Dict[str, int]]:
    """Execute each job under each scheme's real codegen; return
    measured guest cycles: ``{job: {scheme: cycles}}``.

    Each cell instantiates the module on the Wasm toolchain with that
    scheme's strategy and runs it to completion, so the service times
    the serving loop consumes include register pressure, bounds
    checks, per-row host-call transitions, and serialized HFI
    enters — the §6.2 effects — rather than flat constants.  Result
    globals are asserted equal across schemes (the codegen must not
    change semantics).
    """
    from ..wasm import WasmRuntime, make_strategy

    jobs = RENDER_JOBS if jobs is None else jobs
    table: Dict[str, Dict[str, int]] = {}
    for job, builder in jobs.items():
        module = builder()
        cycles: Dict[str, int] = {}
        values = set()
        for scheme in schemes:
            runtime = WasmRuntime()
            instance = runtime.instantiate(module, make_strategy(scheme))
            result = runtime.run(instance, max_instructions)
            if result.reason != "hlt":
                raise RuntimeError(
                    f"{job} under {scheme}: {result.reason} "
                    f"{result.fault}")
            cycles[scheme] = result.stats.cycles
            values.add(runtime.space.read(instance.layout.globals_base))
        if len(values) != 1:
            raise RuntimeError(
                f"{job}: schemes disagree on the result global "
                f"({values})")
        table[job] = cycles
    return table


def build_render_profiles(n_jobs: int, *, seed: int = 0,
                          jobs: Optional[Sequence[str]] = None,
                          tenants: int = 8,
                          high_fraction: float = 0.08,
                          low_fraction: float = 0.20,
                          ) -> List[Tuple[int, str, str, int, int]]:
    """Seeded job mix: ``(index, job, tenant, priority, weight-draw)``.

    Arrival cycles are attached later (they depend on the measured
    baseline capacity), so this returns the scheme-independent part.
    """
    names = list(RENDER_JOBS if jobs is None else jobs)
    rng = random.Random((seed << 8) ^ 0xF0D7)
    out = []
    for index in range(n_jobs):
        draw = rng.random()
        priority = (Priority.HIGH if draw < high_fraction
                    else Priority.LOW if draw < high_fraction + low_fraction
                    else Priority.NORMAL)
        out.append((index, names[rng.randrange(len(names))],
                    f"tenant-{rng.randrange(tenants)}", priority, 0))
    return out


def render_requests(job_table: Dict[str, Dict[str, int]],
                    n_jobs: int, *, seed: int = 0, load: float = 0.8,
                    n_cores: int = 4, arrival: str = "poisson",
                    baseline_scheme: str = "guard-pages",
                    ) -> Dict[str, List[Request]]:
    """Per-scheme request streams over one shared seeded job mix.

    Arrival gaps are sized against the *baseline scheme's* measured
    mean job cost, so every scheme sees identical arrivals and the
    measured codegen differences (HFI's register-pressure win, the
    bounds-check tax) surface as goodput/latency differences.
    """
    profiles = build_render_profiles(n_jobs, seed=seed,
                                     jobs=list(job_table))
    mean_job = (sum(job_table[job][baseline_scheme]
                    for _, job, _, _, _ in profiles)
                / max(1, len(profiles)))
    mean_gap = mean_job / (max(1e-9, load) * n_cores)
    if arrival == "mmpp":
        process = MmppArrivals(mean_gap * 2.2, seed=seed)
    else:
        process = PoissonArrivals(mean_gap, seed=seed)
    gaps = list(process.interarrivals(len(profiles)))
    arrivals = []
    clock = 0
    for gap in gaps:
        clock += gap
        arrivals.append(clock)
    streams: Dict[str, List[Request]] = {}
    for scheme in next(iter(job_table.values())):
        streams[scheme] = [
            Request(index=index, tenant=tenant,
                    service_cycles=job_table[job][scheme],
                    priority=priority, arrival_cycle=arrivals[index])
            for index, job, tenant, priority, _ in profiles]
    return streams


def render_scheme_costs(scheme: str,
                        params: MachineParams = DEFAULT_PARAMS,
                        ) -> SchemeCosts:
    """Serving costs for the render pipelines.

    Guest cycles (including in-sandbox transitions) are measured into
    the service time, so ``transition_cycles`` stays 0; the scheme's
    remaining serving-side difference is pooled staging plus the
    §6.3.1 teardown shape — HFI and bounds-check reservations carry no
    guard regions, so their slot discards batch; guard-page slots must
    madvise immediately.
    """
    if scheme not in RENDER_SCHEMES:
        raise ValueError(f"unknown render scheme {scheme!r}; "
                         f"known: {RENDER_SCHEMES}")
    return SchemeCosts(name=scheme, strategy_name=scheme,
                       transition_cycles=0,
                       dispatch_cycles=POOLED_POP_CYCLES,
                       batch_teardown=(scheme != "guard-pages"))
