"""SPEC CPU 2006-like workloads (paper §6.1, Fig. 3).

Eleven synthetic programs, one per benchmark in the paper's Fig. 3,
each parameterized to its well-known character:

==============  ========================================================
400.perlbench   interpreter dispatch: table loads + multiway branches
401.bzip2       block compression: streaming bytes + compare-heavy
403.gcc         pointer-rich IR walking, several distinct functions
429.mcf         memory-bound pointer chasing, cache-hostile working set
445.gobmk       *large code footprint* (many board-evaluation
                functions) — the i-cache-pressure case where hmov's
                longer encoding makes HFI slightly slower (§6.1)
456.hmmer       dynamic-programming inner loop: dense array sweeps
458.sjeng       game tree: tables + branchy evaluation
462.libquantum  streaming XOR over a large gate array
464.h264ref     motion compensation: block copies, store-heavy
473.astar       graph search: chasing + branches
483.xalancbmk   string/table transformation, branchy
==============  ========================================================

These are not the SPEC programs (we cannot ship them); they are
workloads with matching *instruction mixes* so the relative cost of
isolation strategies — which is all Fig. 3 compares — is reproduced.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..wasm.ir import (
    BinOp,
    BinaryOp,
    Call,
    Cmp,
    Const,
    Function,
    If,
    Load,
    Loop,
    Module,
    Move,
    Store,
    StoreGlobal,
)

MASK32 = 0xFFFF_FFFF


def _lcg(ops: List, x: str = "x") -> None:
    ops += [
        BinOp(BinaryOp.MUL, x, x, 1103515245),
        BinOp(BinaryOp.ADD, x, x, 12345),
        BinOp(BinaryOp.AND, x, x, MASK32),
    ]


def _chain_data(n_nodes: int, stride: int, seed: int) -> bytes:
    """A random pointer-chase permutation: node i stores the byte
    offset of its successor."""
    rng = random.Random(seed)
    order = list(range(1, n_nodes))
    rng.shuffle(order)
    order = [0] + order
    data = bytearray(n_nodes * stride)
    for pos in range(n_nodes):
        cur = order[pos]
        nxt = order[(pos + 1) % n_nodes]
        data[cur * stride:cur * stride + 8] = (nxt * stride).to_bytes(
            8, "little")
    return bytes(data)


def perlbench(scale: int = 1) -> Module:
    """Interpreter loop: opcode fetch, 8-way dispatch, operand loads."""
    dispatch: List = []
    for v in range(8):
        handler = [
            Load("operand", "sp", offset=512),
            BinOp(BinaryOp.ADD, "acc", "acc", "operand"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
            BinOp(BinaryOp.ADD, "sp", "sp", (v & 3) * 8),
            BinOp(BinaryOp.AND, "sp", "sp", 0x1FF8),
        ]
        dispatch = [If("op", Cmp.EQ, v, handler, dispatch)]
    body = [
        Const("x", 42),
        Const("acc", 0),
        Const("sp", 0),
        Const("pc", 0),
        Loop(260 * scale, [
            Load("op", "pc", size=1),
            BinOp(BinaryOp.AND, "op", "op", 7),
            BinOp(BinaryOp.ADD, "pc", "pc", 1),
            BinOp(BinaryOp.AND, "pc", "pc", 0x1FF),
        ] + dispatch),
        StoreGlobal("result", "acc"),
    ]
    data = bytes((i * 131 + 17) & 0xFF for i in range(512))
    return Module("400.perlbench", [Function("main", body)],
                  globals=["result"], data=data)


def bzip2(scale: int = 1) -> Module:
    """Streaming byte transform with run-length-ish compares."""
    body = [
        Const("i", 0),
        Const("prev", 0),
        Const("runs", 0),
        Loop(420 * scale, [
            BinOp(BinaryOp.AND, "a", "i", 0x3FFF),
            Load("ch", "a", size=1),
            If("ch", Cmp.EQ, "prev",
               [BinOp(BinaryOp.ADD, "runs", "runs", 1)],
               [Move("prev", "ch")]),
            BinOp(BinaryOp.XOR, "t", "ch", "prev"),
            BinOp(BinaryOp.SHL, "t", "t", 1),
            Store("a", "t", offset=16384, size=1),
            BinOp(BinaryOp.ADD, "i", "i", 7),
        ]),
        StoreGlobal("result", "runs"),
    ]
    data = bytes((i // 3) & 0xFF for i in range(16384))
    return Module("401.bzip2", [Function("main", body)],
                  globals=["result"], data=data)


def gcc(scale: int = 1) -> Module:
    """IR walking: several passes (functions) over a node array."""
    def pass_fn(name, mult, off):
        return Function(name, [
            Const("n", 0),
            Loop(40, [
                BinOp(BinaryOp.SHL, "a", "n", 4),
                Load("kind", "a", size=4),
                BinOp(BinaryOp.MUL, "kind", "kind", mult),
                BinOp(BinaryOp.AND, "kind", "kind", MASK32),
                Store("a", "kind", offset=off, size=4),
                If("kind", Cmp.GT, 1 << 30,
                   [Store("a", 0, offset=8, size=4)]),
                BinOp(BinaryOp.ADD, "n", "n", 1),
            ]),
        ])
    passes = [pass_fn(f"pass{i}", 2654435761 + i * 2, 4 + (i % 2) * 8)
              for i in range(6)]
    body = [
        Loop(8 * scale, [Call(f"pass{i}") for i in range(6)]),
        Const("z", 0),
        Load("z", 0, size=4),
        StoreGlobal("result", "z"),
    ]
    data = bytes((i * 37 + 5) & 0xFF for i in range(40 * 16))
    return Module("403.gcc", [Function("main", body)] + passes,
                  globals=["result"], data=data)


def mcf(scale: int = 1) -> Module:
    """Cache-hostile pointer chasing over a ~1 MiB arc array, with the
    simplex-style potential accounting that keeps mcf's register file
    full (nine live locals, as the real inner loop has)."""
    n_nodes, stride = 8192, 128
    body = [
        Const("p", 0), Const("acc", 0), Const("cost", 0),
        Const("dist", 0), Const("flow", 0), Const("red", 0),
        Const("pot", 0), Const("t1", 0), Const("t2", 0),
        Loop(900 * scale, [
            Load("p", "p"),                    # follow successor
            Load("cost", "p", offset=8),
            BinOp(BinaryOp.ADD, "dist", "cost", "flow"),
            BinOp(BinaryOp.SHR, "flow", "dist", 1),
            BinOp(BinaryOp.XOR, "red", "red", "dist"),
            BinOp(BinaryOp.ADD, "pot", "pot", "red"),
            BinOp(BinaryOp.AND, "pot", "pot", MASK32),
            BinOp(BinaryOp.AND, "t1", "pot", 0xFF),
            BinOp(BinaryOp.ADD, "t2", "t1", "flow"),
            BinOp(BinaryOp.ADD, "acc", "acc", "cost"),
            BinOp(BinaryOp.ADD, "acc", "acc", "t2"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
        ]),
        StoreGlobal("result", "acc"),
    ]
    return Module("429.mcf", [Function("main", body)],
                  globals=["result"],
                  data=_chain_data(n_nodes, stride, seed=429),
                  memory_pages=16)


def gobmk(scale: int = 1, n_evals: int = 72) -> Module:
    """Go engine: many distinct evaluation functions — the program's
    code footprint exceeds L1i, so instruction-encoding size matters
    (the §6.1 hmov effect)."""
    evals = []
    for i in range(n_evals):
        ops: List = [Const("h", i + 1)]
        for j in range(6):
            ops += [
                BinOp(BinaryOp.ADD, "pos", "h", (i * 6 + j) * 16),
                BinOp(BinaryOp.AND, "pos", "pos", 0x7FFF),
                Load("st", "pos", size=1),
                BinOp(BinaryOp.MUL, "h", "h", 31),
                BinOp(BinaryOp.ADD, "h", "h", "st"),
                BinOp(BinaryOp.AND, "h", "h", MASK32),
                Store("pos", "h", offset=32768, size=1),
            ]
        ops += [
            If("h", Cmp.GT, 1 << 29,
               [Store("pos", 1, offset=8192, size=1)]),
        ]
        evals.append(Function(f"eval{i}", ops))
    body = [
        Loop(3 * scale, [Call(f"eval{i}") for i in range(n_evals)]),
        Const("z", 0),
        Load("z", 0, size=1),
        StoreGlobal("result", "z"),
    ]
    data = bytes((i * 11 + 3) & 0xFF for i in range(32768))
    return Module("445.gobmk", [Function("main", body)] + evals,
                  globals=["result"], data=data)


def hmmer(scale: int = 1) -> Module:
    """Profile-HMM DP inner loop: dense sweeps with max-selects."""
    body = [
        Const("i", 0),
        Const("best", 0),
        Loop(300 * scale, [
            BinOp(BinaryOp.AND, "col", "i", 0xFFF),
            BinOp(BinaryOp.SHL, "a", "col", 2),
            Load("m", "a", size=4),
            Load("ins", "a", offset=16384, size=4),
            BinOp(BinaryOp.ADD, "sc", "m", "ins"),
            BinOp(BinaryOp.AND, "sc", "sc", MASK32),
            If("sc", Cmp.GT, "best", [Move("best", "sc")]),
            Store("a", "sc", offset=32768, size=4),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "best"),
    ]
    data = bytes((i * 73 + 11) & 0xFF for i in range(32768))
    return Module("456.hmmer", [Function("main", body)],
                  globals=["result"], data=data)


def sjeng(scale: int = 1) -> Module:
    """Chess search: hash-table probes + branchy evaluation."""
    body = [
        Const("x", 0xBEEF),
        Const("nodes", 0),
        Const("cut", 0),
        Loop(280 * scale, [
            BinOp(BinaryOp.MUL, "x", "x", 2654435761),
            BinOp(BinaryOp.ADD, "x", "x", 0x9E37),
            BinOp(BinaryOp.AND, "x", "x", MASK32),
            BinOp(BinaryOp.SHR, "slot", "x", 8),
            BinOp(BinaryOp.AND, "slot", "slot", 0x3FF8),
            Load("entry", "slot"),
            If("entry", Cmp.EQ, 0,
               [Store("slot", "x"),
                BinOp(BinaryOp.ADD, "nodes", "nodes", 1)],
               [BinOp(BinaryOp.ADD, "cut", "cut", 1)]),
        ]),
        BinOp(BinaryOp.SHL, "r", "nodes", 16),
        BinOp(BinaryOp.OR, "r", "r", "cut"),
        StoreGlobal("result", "r"),
    ]
    return Module("458.sjeng", [Function("main", body)],
                  globals=["result"])


def libquantum(scale: int = 1) -> Module:
    """Quantum gate simulation: streaming XOR over the state vector."""
    body = [
        Const("i", 0), Const("acc", 0), Const("idx", 0),
        Const("a", 0), Const("amp", 0), Const("phase", 0),
        Const("ctrl", 0), Const("tgt", 0), Const("par", 0),
        Loop(520 * scale, [
            BinOp(BinaryOp.AND, "idx", "i", 0x7FFF),
            BinOp(BinaryOp.SHL, "a", "idx", 3),
            BinOp(BinaryOp.AND, "a", "a", 0x3FFF8),
            Load("amp", "a"),
            BinOp(BinaryOp.XOR, "amp", "amp", 0x100000),
            Store("a", "amp"),
            BinOp(BinaryOp.SHR, "ctrl", "amp", 5),
            BinOp(BinaryOp.AND, "tgt", "ctrl", 0x1F),
            BinOp(BinaryOp.XOR, "phase", "phase", "tgt"),
            BinOp(BinaryOp.ADD, "par", "par", "phase"),
            BinOp(BinaryOp.AND, "par", "par", MASK32),
            BinOp(BinaryOp.ADD, "acc", "acc", 1),
            BinOp(BinaryOp.ADD, "i", "i", 27),
        ]),
        BinOp(BinaryOp.XOR, "acc", "acc", "par"),
        StoreGlobal("result", "acc"),
    ]
    return Module("462.libquantum", [Function("main", body)],
                  globals=["result"], memory_pages=8)


def h264ref(scale: int = 1) -> Module:
    """Motion compensation: 8-byte block copies with interpolation."""
    body = [
        Const("blk", 0),
        Const("acc", 0),
        Loop(110 * scale, [
            BinOp(BinaryOp.AND, "src", "blk", 0x3FFF),
            Const("row", 0),
            Loop(4, [
                BinOp(BinaryOp.SHL, "ra", "row", 3),
                BinOp(BinaryOp.ADD, "sa", "src", "ra"),
                Load("p0", "sa"),
                Load("p1", "sa", offset=8),
                BinOp(BinaryOp.ADD, "mix", "p0", "p1"),
                BinOp(BinaryOp.SHR, "mix", "mix", 1),
                Store("sa", "mix", offset=16384),
                BinOp(BinaryOp.ADD, "acc", "acc", "mix"),
                BinOp(BinaryOp.AND, "acc", "acc", MASK32),
                BinOp(BinaryOp.ADD, "row", "row", 1),
            ]),
            BinOp(BinaryOp.ADD, "blk", "blk", 67),
        ]),
        StoreGlobal("result", "acc"),
    ]
    data = bytes((i * 201 + 7) & 0xFF for i in range(16384))
    return Module("464.h264ref", [Function("main", body)],
                  globals=["result"], data=data)


def astar(scale: int = 1) -> Module:
    """Path search: successor chasing + heuristic branches."""
    n_nodes, stride = 4096, 64
    body = [
        Const("p", 0), Const("open_cnt", 0), Const("g", 0),
        Const("h", 0), Const("f", 0), Const("best", 0),
        Const("tie", 0), Const("depth", 0), Const("wsum", 0),
        Loop(650 * scale, [
            Load("p", "p"),
            Load("h", "p", offset=8),
            BinOp(BinaryOp.ADD, "f", "g", "h"),
            BinOp(BinaryOp.AND, "f", "f", MASK32),
            BinOp(BinaryOp.XOR, "tie", "tie", "f"),
            BinOp(BinaryOp.ADD, "depth", "depth", 1),
            BinOp(BinaryOp.ADD, "wsum", "wsum", "h"),
            BinOp(BinaryOp.AND, "wsum", "wsum", MASK32),
            If("f", Cmp.GT, 1 << 20,
               [Const("g", 0)],
               [BinOp(BinaryOp.ADD, "g", "g", 3),
                BinOp(BinaryOp.ADD, "open_cnt", "open_cnt", 1)]),
            If("f", Cmp.GT, "best", [Move("best", "f")]),
        ]),
        BinOp(BinaryOp.XOR, "open_cnt", "open_cnt", "tie"),
        BinOp(BinaryOp.ADD, "open_cnt", "open_cnt", "wsum"),
        BinOp(BinaryOp.AND, "open_cnt", "open_cnt", MASK32),
        StoreGlobal("result", "open_cnt"),
    ]
    return Module("473.astar", [Function("main", body)],
                  globals=["result"],
                  data=_chain_data(n_nodes, stride, seed=473),
                  memory_pages=8)


def xalancbmk(scale: int = 1) -> Module:
    """XSLT-ish transformation: byte classification + table rewrite."""
    body = [
        Const("i", 0),
        Const("out", 4096),
        Const("emitted", 0),
        Loop(380 * scale, [
            BinOp(BinaryOp.AND, "ia", "i", 0xFFF),
            Load("ch", "ia", size=1),
            BinOp(BinaryOp.AND, "key", "ch", 0xFF),
            Load("sub", "key", offset=8192, size=1),
            If("sub", Cmp.NE, 0,
               [Store("out", "sub", size=1),
                BinOp(BinaryOp.ADD, "out", "out", 1),
                BinOp(BinaryOp.AND, "out", "out", 0x1FFF),
                BinOp(BinaryOp.ADD, "emitted", "emitted", 1)]),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "emitted"),
    ]
    table = bytearray(4096 + 4096 + 256)
    for i in range(4096):
        table[i] = (i * 53 + 1) & 0xFF
    for c in range(256):
        table[8192 + c] = c ^ 0x20 if 64 <= c < 128 else 0
    return Module("483.xalancbmk", [Function("main", body)],
                  globals=["result"], data=bytes(table[:4096]) + bytes(4096)
                  + bytes(table[8192:8192 + 256]))


#: Fig. 3's x-axis, in order.
SPEC_BENCHMARKS: Dict[str, Callable[[int], Module]] = {
    "400.perlbench": perlbench,
    "401.bzip2": bzip2,
    "403.gcc": gcc,
    "429.mcf": mcf,
    "445.gobmk": gobmk,
    "456.hmmer": hmmer,
    "458.sjeng": sjeng,
    "462.libquantum": libquantum,
    "464.h264ref": h264ref,
    "473.astar": astar,
    "483.xalancbmk": xalancbmk,
}
