"""Firefox image-rendering workload (paper §6.2, Fig. 4).

Models a Wasm-sandboxed libjpeg: Firefox calls into the sandbox once
per *line of pixels* (the paper notes a 1080x720 image costs ~720x2
serialized transitions), and each line runs Huffman-decode + IDCT-ish
per-pixel work.  Compression level scales the per-pixel compute (more
compressed => more compute per output pixel), which is also where
register pressure bites — the paper's explanation for HFI's larger
speedups on compressed images.

Resolutions are scaled down for simulation (documented in
EXPERIMENTS.md): the *ratios* between configurations are what Fig. 4
plots.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..wasm.ir import (
    BinOp,
    BinaryOp,
    Const,
    Function,
    HostCall,
    Load,
    Loop,
    Module,
    StoreGlobal,
    Store,
)

MASK32 = 0xFFFF_FFFF

#: (rows, pixels-per-row) after scaling; paper uses 1920p/480p/240p.
RESOLUTIONS: Dict[str, Tuple[int, int]] = {
    "1920p": (28, 120),
    "480p": (12, 60),
    "240p": (6, 30),
}

#: Per-pixel compute rounds; paper uses best/default/none compression.
COMPRESSION_ROUNDS: Dict[str, int] = {
    "best": 4,
    "default": 2,
    "none": 1,
}


def jpeg_decode(resolution: str = "480p",
                compression: str = "default") -> Module:
    """Build a decode module for one (resolution, compression) cell."""
    rows, px = RESOLUTIONS[resolution]
    rounds = COMPRESSION_ROUNDS[compression]

    # Per-pixel work: coefficient load, `rounds` of butterfly-ish ALU,
    # and the output store.  Locals are declared so the *hottest*
    # accumulator ``s`` is the 10th allocated local: the HFI strategies
    # (no pinned heap-base register) keep it in a register while the
    # guard-page/bounds compilers spill it — the register-pressure
    # effect the paper credits for HFI's rendering speedups, scaling
    # with per-pixel compute (compression level).
    pixel_ops: List = [
        BinOp(BinaryOp.SHL, "a", "px_i", 2),
        Load("coef", "a", size=4),
        BinOp(BinaryOp.MUL, "t", "coef", 5793),     # sqrt(2)<<12
        BinOp(BinaryOp.SHR, "t", "t", 12),
        BinOp(BinaryOp.AND, "t", "t", MASK32),
    ]
    for r in range(rounds):
        pixel_ops += [
            BinOp(BinaryOp.ADD, "t", "t", 1108 + r * 311),
            BinOp(BinaryOp.MUL, "t", "t", 2217 + r * 16),
            BinOp(BinaryOp.SHR, "t", "t", 11),
            BinOp(BinaryOp.AND, "t", "t", MASK32),
            BinOp(BinaryOp.XOR, "t", "t", "coef"),
            BinOp(BinaryOp.XOR, "s", "s", "t"),     # running DC term
        ]
    pixel_ops += [
        BinOp(BinaryOp.AND, "lum", "s", 0xFF),
        BinOp(BinaryOp.ADD, "out", "row_base", "px_i"),
        Store("out", "lum", offset=16384, size=1),
        BinOp(BinaryOp.MUL, "checksum", "checksum", 31),
        BinOp(BinaryOp.ADD, "checksum", "checksum", "lum"),
        BinOp(BinaryOp.XOR, "checksum", "checksum", "t"),
        BinOp(BinaryOp.AND, "checksum", "checksum", MASK32),
        BinOp(BinaryOp.ADD, "px_i", "px_i", 1),
    ]

    body: List = [
        # allocation-order pinning: 9 cooler locals first, then "s"
        Const("row", 0),
        Const("row_base", 0),
        Const("px_i", 0),
        Const("a", 0),
        Const("coef", 0),
        Const("t", 0),
        Const("lum", 0),
        Const("out", 0),
        Const("checksum", 0),
        Const("s", 0),
        Loop(rows, [
            # Firefox calls into the sandbox per row: each iteration
            # pays a full sandbox transition (Fig. 4's amortization).
            HostCall(host_cycles=12),
            BinOp(BinaryOp.MUL, "row_base", "row", px),
            Const("px_i", 0),
            Loop(px, pixel_ops),
            BinOp(BinaryOp.ADD, "row", "row", 1),
        ]),
        StoreGlobal("result", "checksum"),
    ]
    coeffs = bytes(((i * 197 + 31) & 0xFF) for i in range(4 * px * 4))
    return Module(f"jpeg-{resolution}-{compression}",
                  [Function("main", body)],
                  globals=["result"], data=coeffs)


def all_configurations():
    """Yield (resolution, compression, module) for the full Fig. 4 grid."""
    for compression in COMPRESSION_ROUNDS:
        for resolution in RESOLUTIONS:
            yield resolution, compression, jpeg_decode(resolution,
                                                       compression)
