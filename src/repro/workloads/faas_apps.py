"""The four FaaS applications of Table 1 (paper §6.5).

Each builder returns a wir module whose instruction mix matches the
app's character; the Table 1 benchmark compiles them under
Lucet-unsafe / Lucet+HFI(native) / Lucet+Swivel, measures service
cycles on the simulator, and feeds a FaaS queueing model.

Relative service weights follow the paper's latency column (templated
HTML ~45 ms ... image classification ~12 s): we keep the *ordering*
and a compressed dynamic range so the suite simulates quickly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..wasm.ir import (
    BinOp,
    BinaryOp,
    Cmp,
    Const,
    Function,
    If,
    Load,
    Loop,
    Module,
    Store,
    StoreGlobal,
)

MASK32 = 0xFFFF_FFFF


def xml_to_json(scale: int = 1) -> Module:
    """Tag scanning and re-emission: byte loads, branches, stores."""
    doc = (b"<item id='1'><name>widget</name><qty>3</qty></item>" * 40)
    body: List = [
        Const("i", 0),
        Const("depth", 0),
        Const("emitted", 0),
        Loop(len(doc) * scale, [
            BinOp(BinaryOp.AND, "ia", "i", 0x7FF),
            Load("ch", "ia", size=1),
            If("ch", Cmp.EQ, 60, [                      # '<'
                Load("nxt", "ia", offset=1, size=1),
                If("nxt", Cmp.EQ, 47,                    # '/'
                   [BinOp(BinaryOp.SUB, "depth", "depth", 1),
                    Store("emitted", 125, offset=4096, size=1)],  # '}'
                   [BinOp(BinaryOp.ADD, "depth", "depth", 1),
                    Store("emitted", 123, offset=4096, size=1)]),  # '{'
                BinOp(BinaryOp.ADD, "emitted", "emitted", 1),
                BinOp(BinaryOp.AND, "emitted", "emitted", 0xFFF),
            ], [
                If("ch", Cmp.GT, 32, [
                    Store("emitted", "ch", offset=4096, size=1),
                    BinOp(BinaryOp.ADD, "emitted", "emitted", 1),
                    BinOp(BinaryOp.AND, "emitted", "emitted", 0xFFF),
                ]),
            ]),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "emitted"),
    ]
    return Module("xml-to-json", [Function("main", body)],
                  globals=["result"], data=doc)


def image_classification(scale: int = 1) -> Module:
    """A small convolution + pooling stack — the heavyweight app."""
    width = 48
    body: List = [
        Const("acc", 0),
        Const("layer", 0),
        Loop(3 * scale, [                     # conv layers
            Const("y", 0),
            Loop(10, [
                Const("x", 0),
                Loop(width - 2, [
                    BinOp(BinaryOp.MUL, "base", "y", width),
                    BinOp(BinaryOp.ADD, "base", "base", "x"),
                    Load("p0", "base", size=1),
                    Load("p1", "base", offset=1, size=1),
                    Load("p2", "base", offset=2, size=1),
                    Load("p3", "base", offset=width, size=1),
                    BinOp(BinaryOp.MUL, "s", "p0", 3),
                    BinOp(BinaryOp.MUL, "t", "p1", 5),
                    BinOp(BinaryOp.ADD, "s", "s", "t"),
                    BinOp(BinaryOp.MUL, "t", "p2", 7),
                    BinOp(BinaryOp.ADD, "s", "s", "t"),
                    BinOp(BinaryOp.MUL, "t", "p3", 2),
                    BinOp(BinaryOp.ADD, "s", "s", "t"),
                    BinOp(BinaryOp.SHR, "s", "s", 4),
                    BinOp(BinaryOp.AND, "s", "s", 0xFF),
                    Store("base", "s", offset=8192, size=1),
                    BinOp(BinaryOp.ADD, "acc", "acc", "s"),
                    BinOp(BinaryOp.AND, "acc", "acc", MASK32),
                    BinOp(BinaryOp.ADD, "x", "x", 1),
                ]),
                BinOp(BinaryOp.ADD, "y", "y", 1),
            ]),
            BinOp(BinaryOp.ADD, "layer", "layer", 1),
        ]),
        StoreGlobal("result", "acc"),
    ]
    pixels = bytes(((x * 31 + y * 7) & 0xFF)
                   for y in range(12) for x in range(width * 12))
    return Module("image-classification", [Function("main", body)],
                  globals=["result"], data=pixels[:4096])


def sha256_check(scale: int = 1) -> Module:
    """SHA-256-like compression over message blocks."""
    state = [f"h{i}" for i in range(8)]
    init = [Const(s, (0x6A09E667 + i * 0x1000193) & MASK32)
            for i, s in enumerate(state)]
    round_ops: List = [
        BinOp(BinaryOp.AND, "wa", "blk", 0x3C),
        Load("w", "wa", size=4),
    ]
    for i in range(4):
        a, b, c = state[i], state[(i + 1) % 8], state[(i + 5) % 8]
        round_ops += [
            BinOp(BinaryOp.SHR, "s1", b, 6),
            BinOp(BinaryOp.XOR, "s1", "s1", b),
            BinOp(BinaryOp.AND, "ch", b, c),
            BinOp(BinaryOp.ADD, "tmp", "s1", "ch"),
            BinOp(BinaryOp.ADD, "tmp", "tmp", "w"),
            BinOp(BinaryOp.ADD, "tmp", "tmp", 0x428A2F98 + i),
            BinOp(BinaryOp.ADD, a, a, "tmp"),
            BinOp(BinaryOp.AND, a, a, MASK32),
        ]
    body = init + [
        Const("blk", 0),
        Loop(60 * scale, round_ops + [
            BinOp(BinaryOp.ADD, "blk", "blk", 4),
        ]),
        BinOp(BinaryOp.XOR, "digest", state[0], state[7]),
        BinOp(BinaryOp.XOR, "digest", "digest", state[3]),
        StoreGlobal("result", "digest"),
    ]
    msg = bytes((i * 149 + 7) & 0xFF for i in range(256))
    return Module("sha256-check", [Function("main", body)],
                  globals=["result"], data=msg)


def templated_html(scale: int = 1) -> Module:
    """Template substitution: copy with placeholder expansion — the
    lightweight app."""
    template = (b"<li class=?>item ? of ?</li>" * 12)
    body: List = [
        Const("i", 0),
        Const("o", 0),
        Const("subs", 0),
        Loop(len(template) * scale, [
            BinOp(BinaryOp.AND, "ia", "i", 0x1FF),
            Load("ch", "ia", size=1),
            If("ch", Cmp.EQ, 63, [                  # '?'
                BinOp(BinaryOp.ADD, "subs", "subs", 1),
                BinOp(BinaryOp.AND, "sub_i", "subs", 0x3F),
                Load("sub", "sub_i", offset=512, size=1),
                Store("o", "sub", offset=4096, size=1),
            ], [
                Store("o", "ch", offset=4096, size=1),
            ]),
            BinOp(BinaryOp.ADD, "o", "o", 1),
            BinOp(BinaryOp.AND, "o", "o", 0xFFF),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        StoreGlobal("result", "subs"),
    ]
    data = template + bytes(64) + bytes(
        (48 + (i % 10)) for i in range(64))
    # layout: template at 0, substitution digits at 512
    padded = bytearray(1024)
    padded[:len(template)] = template
    for i in range(64):
        padded[512 + i] = 48 + (i % 10)
    return Module("templated-html", [Function("main", body)],
                  globals=["result"], data=bytes(padded))


#: Table 1's column order.
FAAS_APPS: Dict[str, Callable[[int], Module]] = {
    "xml-to-json": xml_to_json,
    "image-classification": image_classification,
    "sha256-check": sha256_check,
    "templated-html": templated_html,
}

#: Relative request weights approximating Table 1's latency ordering
#: (templated HTML lightest, image classification heaviest).
APP_SCALES: Dict[str, int] = {
    "xml-to-json": 3,
    "image-classification": 6,
    "sha256-check": 4,
    "templated-html": 3,
}
