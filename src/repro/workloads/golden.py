"""Golden workloads: deterministic runs whose cycle counts are locked.

The cycle-level simulator's value rests on *reproducible* timing: a
refactor of the interpreter must not move a single cycle, or every
figure the repo reproduces silently drifts.  This module defines a
fixed set of representative workloads — a Sightglass subset, a SPEC
mix, an NGINX-shaped sandbox-transition loop, and a Spectre-PHT attack
run — and reduces each to a flat dict of counters
(:class:`~repro.cpu.machine.CpuStats` plus workload-specific results).

``scripts/gen_golden_cycles.py`` freezes these into
``tests/golden_cycles.json``; ``tests/test_golden_cycles.py`` replays
them and requires bit-equality.  Regenerate the fixture *only* for a
change that is supposed to alter timing, and say so in the commit.

.. warning::
   Workloads must be evaluated in registry order.  Some builders
   (sightglass temp naming) keep module-global counters, so building a
   subset out of order produces different — still deterministic, but
   different — programs.  :func:`run_all` is the supported entry point.
"""

from __future__ import annotations

import contextlib

from typing import Callable, Dict, List, Optional, Tuple

from ..core import ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from ..core.encoding import encode_region, encode_sandbox
from ..core.regions import ExplicitDataRegion
from ..cpu.machine import Cpu, CpuStats, default_engine, default_timing
from ..isa import Assembler, Imm, Mem, Reg
from ..os.address_space import AddressSpace, Prot
from ..params import MachineParams

Metrics = Dict[str, object]


def _stats_dict(stats: CpuStats) -> Metrics:
    return {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "branches": stats.branches,
        "mispredicts": stats.mispredicts,
        "speculative_instructions": stats.speculative_instructions,
        "loads": stats.loads,
        "stores": stats.stores,
        "syscalls": stats.syscalls,
        "interposed_syscalls": stats.interposed_syscalls,
        "hfi_faults": stats.hfi_faults,
        "page_faults": stats.page_faults,
        "serializations": stats.serializations,
    }


# ----------------------------------------------------------------------
# Wasm workloads (Sightglass subset + SPEC mix)
# ----------------------------------------------------------------------
def _run_wasm(module_builder, strategy_factory) -> Metrics:
    from ..wasm import WasmRuntime

    runtime = WasmRuntime()
    module = module_builder(1)
    instance = runtime.instantiate(module, strategy_factory())
    result = runtime.run(instance)
    metrics = _stats_dict(runtime.cpu.stats)
    metrics["reason"] = result.reason
    metrics["result_global"] = runtime.space.read(
        instance.layout.globals_base)
    return metrics


def _wasm_case(suite: str, name: str, strategy: str) -> Callable[[], Metrics]:
    def build() -> Metrics:
        from ..wasm import (
            BoundsCheckStrategy,
            GuardPagesStrategy,
            HfiEmulationStrategy,
            HfiStrategy,
        )

        strategies = {
            "guard-pages": GuardPagesStrategy,
            "bounds-check": BoundsCheckStrategy,
            "hfi": HfiStrategy,
            "hfi-emulation": HfiEmulationStrategy,
        }
        if suite == "sightglass":
            from .sightglass import SIGHTGLASS_BENCHMARKS as registry
        else:
            from .spec import SPEC_BENCHMARKS as registry
        return _run_wasm(registry[name], strategies[strategy])

    return build


# ----------------------------------------------------------------------
# NGINX-shaped transition loop (cycle-level enter/exit per "request")
# ----------------------------------------------------------------------
def _transition_loop(iterations: int = 200) -> Metrics:
    """A trusted runtime entering/leaving a serialized sandbox per
    iteration — the per-request shape of the §6.4.2 NGINX experiment,
    but run on the cycle simulator so transition costs (descriptor
    loads, serialization drains, hmov checks) are locked end to end."""
    params = MachineParams()
    mem = AddressSpace(params)
    cpu = Cpu(params, memory=mem)
    heap = mem.mmap(1 << 20, Prot.rw(), addr=0x10_0000)
    stack = mem.mmap(1 << 16, Prot.rw(), addr=0x7F_0000)
    cpu.regs.write(Reg.RSP, stack + (1 << 16) - 64)
    desc = mem.mmap(4096, Prot.rw(), addr=0x20_0000)

    code = ImplicitCodeRegion.covering(0x40_0000, 1 << 16)
    data = ImplicitDataRegion(heap, 0xFFFF, True, True)
    stack_region = ImplicitDataRegion(0x7F_0000, 0xFFFF, True, True)
    explicit = ExplicitDataRegion(heap, 1 << 16, permission_read=True,
                                  permission_write=True)
    mem.write_bytes(desc, encode_region(code))
    mem.write_bytes(desc + 24, encode_region(data))
    mem.write_bytes(desc + 48, encode_region(stack_region))
    mem.write_bytes(desc + 72, encode_region(explicit))
    mem.write_bytes(desc + 96, encode_sandbox(
        SandboxFlags(is_hybrid=False, is_serialized=True)))

    asm = Assembler()
    asm.mov(Reg.RDI, Imm(desc))
    asm.hfi_set_region(0, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 24))
    asm.hfi_set_region(2, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 48))
    asm.hfi_set_region(3, Reg.RDI)
    asm.mov(Reg.RDI, Imm(desc + 72))
    asm.hfi_set_region(6, Reg.RDI)
    asm.mov(Reg.R8, Imm(iterations))
    asm.mov(Reg.RDI, Imm(desc + 96))
    asm.label("request")
    asm.hfi_enter(Reg.RDI)
    # "crypto" work inside the sandbox: loads, stores, hmov traffic
    asm.mov(Reg.RBX, Imm(heap))
    asm.mov(Reg.RAX, Mem(base=Reg.RBX, disp=16))
    asm.add(Reg.RAX, Imm(0x1234))
    asm.mov(Mem(base=Reg.RBX, disp=16), Reg.RAX)
    asm.mov(Reg.RCX, Imm(64))
    asm.hmov(0, Reg.RDX, Mem(index=Reg.RCX, scale=1, disp=0))
    asm.hmov(0, Mem(index=Reg.RCX, scale=1, disp=8), Reg.RDX)
    asm.hfi_exit()
    asm.dec(Reg.R8)
    asm.jne("request")
    asm.hlt()
    program = asm.assemble()
    cpu.load_program(program)
    result = cpu.run(program.base, max_instructions=1_000_000)
    metrics = _stats_dict(cpu.stats)
    metrics["reason"] = result.reason
    metrics["hfi_enters"] = cpu.hfi.enters
    metrics["hfi_exits"] = cpu.hfi.exits
    return metrics


# ----------------------------------------------------------------------
# NGINX analytic model (locks the transition-cost arithmetic)
# ----------------------------------------------------------------------
def _nginx_request_grid() -> Metrics:
    from .nginx import NginxModel

    model = NginxModel()
    metrics: Metrics = {}
    for scheme in ("unprotected", "hfi", "mpk"):
        for size in (0, 16 << 10, 128 << 10):
            metrics[f"{scheme}_{size}"] = model.request_cycles(size, scheme)
    return metrics


# ----------------------------------------------------------------------
# Spectre-PHT attack runs
# ----------------------------------------------------------------------
def _spectre_pht(protect_with_hfi: bool) -> Metrics:
    from ..attacks.spectre_pht import SpectrePhtAttack

    attack = SpectrePhtAttack(protect_with_hfi=protect_with_hfi)
    outcome = attack.attack(secret_value=ord("I"))
    metrics = _stats_dict(attack.cpu.stats)
    metrics["leaked_value"] = outcome.leaked_value
    metrics["threshold"] = outcome.threshold
    metrics["hit_count"] = len(outcome.hits)
    return metrics


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
GOLDEN_WORKLOADS: Dict[str, Callable[[], Metrics]] = {
    # Sightglass subset: ALU-bound, memory-bound, branchy, crypto
    "sightglass_fib2_guard-pages": _wasm_case("sightglass", "fib2",
                                              "guard-pages"),
    "sightglass_fib2_hfi": _wasm_case("sightglass", "fib2", "hfi"),
    "sightglass_memmove_guard-pages": _wasm_case("sightglass", "memmove",
                                                 "guard-pages"),
    "sightglass_memmove_hfi": _wasm_case("sightglass", "memmove", "hfi"),
    "sightglass_switch_hfi": _wasm_case("sightglass", "switch", "hfi"),
    "sightglass_keccak_hfi": _wasm_case("sightglass", "keccak", "hfi"),
    "sightglass_keccak_hfi-emulation": _wasm_case("sightglass", "keccak",
                                                  "hfi-emulation"),
    # SPEC mix: interpreter dispatch, pointer chasing, big code footprint
    "spec_perlbench_hfi": _wasm_case("spec", "400.perlbench", "hfi"),
    "spec_mcf_guard-pages": _wasm_case("spec", "429.mcf", "guard-pages"),
    "spec_mcf_hfi": _wasm_case("spec", "429.mcf", "hfi"),
    "spec_gobmk_hfi": _wasm_case("spec", "445.gobmk", "hfi"),
    # transitions + analytic NGINX grid
    "nginx_transition_loop": _transition_loop,
    "nginx_request_grid": _nginx_request_grid,
    # Spectre-PHT: the channel open, then closed by HFI
    "spectre_pht_unprotected": lambda: _spectre_pht(False),
    "spectre_pht_hfi": lambda: _spectre_pht(True),
}


def run_all(engine: Optional[str] = None,
            timing: Optional[str] = None) -> Dict[str, Metrics]:
    """Evaluate every golden workload, in registry order.

    ``engine`` (and ``timing``) scope the process-wide default
    execution and timing backends for the duration of the run, so
    every CPU constructed inside the workloads (wasm runtimes, attack
    harnesses, transition loops) uses them.  Each fixture file is
    regenerated under ``staged`` with one timing model and replayed
    under every engine that promises cycle parity for it."""
    with contextlib.ExitStack() as scopes:
        if engine is not None:
            scopes.enter_context(default_engine(engine))
        if timing is not None:
            scopes.enter_context(default_timing(timing))
        return {name: build() for name, build in GOLDEN_WORKLOADS.items()}
