"""NGINX + sandboxed OpenSSL model (paper §6.4.2, Fig. 5).

Follows ERIM's experimental shape: NGINX serves files of various sizes
over TLS with the crypto code and session keys isolated.  Per request
the server pays:

* request handling (accept, header parse, syscalls, content copy), and
* crypto work proportional to the payload, split into TLS records,
  with a *protection-domain switch into and out of the sandbox around
  every crypto call*.

Protection schemes: ``unprotected`` (plain calls), ``hfi`` (native
sandbox: serialized hfi_enter/exit + region metadata moves — no
execution overhead inside, §6.4.2), and ``mpk`` (ERIM: wrpkru pairs —
slightly cheaper because nothing is loaded from memory).

The §6.4.1 syscall-interposition comparison (seccomp-bpf vs HFI) is in
:mod:`repro.benchmarks`' harness using :class:`repro.os.SeccompFilter`
directly; this module is the throughput model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..params import DEFAULT_PARAMS, MachineParams
from ..runtime.transitions import TransitionKind, TransitionModel

TLS_RECORD_BYTES = 16 * 1024

#: Fig. 5's x-axis.
FILE_SIZES = [0, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10,
              32 << 10, 64 << 10, 128 << 10]

SCHEMES = ("unprotected", "hfi", "mpk")


@dataclass
class NginxModel:
    """Cycle model for one worker serving TLS requests."""

    params: MachineParams = field(default_factory=lambda: DEFAULT_PARAMS)
    #: request handling outside crypto: parse + fd syscalls + copy setup
    request_base_cycles: int = 50_000
    #: kernel/socket cost per payload byte (copies, checksums)
    io_cycles_per_byte: float = 1.1
    #: crypto cycles per byte (AES-GCM-class)
    crypto_cycles_per_byte: float = 1.4
    #: handshake-time crypto calls (key schedule, MAC setup) per request
    handshake_crypto_calls: int = 6
    #: crypto calls per TLS record (encrypt, MAC, IV derivation, and
    #: the read/write split ERIM interposes on)
    calls_per_record: int = 7

    def __post_init__(self):
        self.transitions = TransitionModel(self.params)

    # ------------------------------------------------------------------
    def crypto_calls(self, file_bytes: int) -> int:
        """Sandbox entries per request: handshake plus per-record calls
        (encrypt, MAC, IV), min one record even for empty bodies."""
        records = max(1, math.ceil(file_bytes / TLS_RECORD_BYTES))
        return self.handshake_crypto_calls + self.calls_per_record * records

    def switch_cost(self, scheme: str) -> int:
        """One round trip into and out of the crypto domain."""
        if scheme == "unprotected":
            return 2 * self.params.base_cycles          # call/ret
        if scheme == "hfi":
            # §6.4.2: serialized enter/exit plus moving region metadata
            # from memory into HFI registers on each transition.
            return (self.transitions.hfi_enter_cost(
                        serialized=True, regions_installed=3)
                    + self.transitions.hfi_exit_cost(serialized=True))
        if scheme == "mpk":
            # ERIM switch gate — the shared formula in TransitionModel
            return 2 * self.transitions.mpk_switch_cost()
        raise ValueError(f"unknown scheme {scheme!r}")

    def request_cycles(self, file_bytes: int, scheme: str) -> int:
        base = (self.request_base_cycles
                + int(self.io_cycles_per_byte * file_bytes))
        crypto = int(self.crypto_cycles_per_byte * max(file_bytes, 512))
        switches = self.crypto_calls(file_bytes) * self.switch_cost(scheme)
        return base + crypto + switches

    # ------------------------------------------------------------------
    def throughput_rps(self, file_bytes: int, scheme: str) -> float:
        """Single-worker saturation throughput (Fig. 5's y-axis)."""
        seconds = self.params.cycles_to_seconds(
            self.request_cycles(file_bytes, scheme))
        return 1.0 / seconds

    def overhead_pct(self, file_bytes: int, scheme: str) -> float:
        """Throughput loss vs the unprotected server, in percent."""
        base = self.throughput_rps(file_bytes, "unprotected")
        return 100.0 * (1.0 - self.throughput_rps(file_bytes, scheme)
                        / base)

    def sweep(self) -> Dict[str, List[float]]:
        """Throughput for every (scheme, file size) — the Fig. 5 grid."""
        return {scheme: [self.throughput_rps(size, scheme)
                         for size in FILE_SIZES]
                for scheme in SCHEMES}
