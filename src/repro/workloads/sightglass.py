"""Sightglass-like microbenchmarks (paper §5.2, Fig. 2).

Sixteen small Wasm-friendly kernels mirroring the Sightglass suite the
paper uses to cross-validate gem5-simulated HFI against its software
emulation: cryptography primitives (ARX rounds), math, string and
table manipulation, and control flow.  Each builder returns a wir
:class:`~repro.wasm.ir.Module` that writes a checksum into the
``result`` global, so strategy equivalence is machine-checkable.

``scale`` multiplies iteration counts; the defaults keep each kernel
in the few-thousand-instruction range so the full suite runs on the
cycle simulator in seconds (gem5's "over a day" exclusions do not
apply to us, but proportionality does).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..wasm.ir import (
    BinOp,
    BinaryOp,
    Call,
    Cmp,
    Const,
    Function,
    If,
    Load,
    LoadGlobal,
    Loop,
    Module,
    Move,
    Store,
    StoreGlobal,
)

MASK32 = 0xFFFF_FFFF
_temp_counter = [0]


def _t(prefix: str = "t") -> str:
    _temp_counter[0] += 1
    return f"{prefix}{_temp_counter[0]}"


def rotl(var: str, amount: int, bits: int = 32) -> List:
    """Emit a rotate-left of ``var`` by ``amount`` within ``bits``.

    Uses two shared scratch temps — their live range is only these
    three ops, so reuse keeps kernels from drowning in locals.
    """
    hi, lo = "rot_hi", "rot_lo"
    ops = [
        BinOp(BinaryOp.SHL, hi, var, amount),
        BinOp(BinaryOp.SHR, lo, var, bits - amount),
        BinOp(BinaryOp.OR, var, hi, lo),
    ]
    if bits == 32:
        ops.append(BinOp(BinaryOp.AND, var, var, MASK32))
    return ops


def _finish(acc: str) -> List:
    return [StoreGlobal("result", acc)]


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def fib2(scale: int = 1) -> Module:
    """Iterative Fibonacci — pure ALU and a predictable loop."""
    body = [
        Const("acc", 0),
        Loop(20 * scale, [
            Const("a", 0), Const("b", 1),
            Loop(40, [
                BinOp(BinaryOp.ADD, "c", "a", "b"),
                Move("a", "b"),
                Move("b", "c"),
                BinOp(BinaryOp.AND, "b", "b", MASK32),
            ]),
            BinOp(BinaryOp.ADD, "acc", "acc", "a"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
        ]),
    ] + _finish("acc")
    return Module("fib2", [Function("main", body)], globals=["result"])


def nestedloop(scale: int = 1) -> Module:
    """Three nested counted loops — loop-overhead dominated."""
    body = [
        Const("acc", 0),
        Loop(6 * scale, [
            Loop(12, [
                Loop(15, [
                    BinOp(BinaryOp.ADD, "acc", "acc", 1),
                ]),
            ]),
        ]),
    ] + _finish("acc")
    return Module("nestedloop", [Function("main", body)],
                  globals=["result"])


def sieve(scale: int = 1) -> Module:
    """Sieve of Eratosthenes over linear memory — store heavy."""
    n = 600 * scale
    body = [
        Const("i", 2),
        Loop(23, [                       # primes up to sqrt(600*scale)~24
            BinOp(BinaryOp.MUL, "start", "i", "i"),
            If("start", Cmp.LT, n, [
                BinOp(BinaryOp.SUB, "span", n, "start"),
                BinOp(BinaryOp.DIV, "trips", "span", "i"),
                BinOp(BinaryOp.ADD, "trips", "trips", 1),
                Move("j", "start"),
                Loop("trips", [
                    Store("j", 1, size=1),
                    BinOp(BinaryOp.ADD, "j", "j", "i"),
                ]),
            ]),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        # count survivors in [2, n)
        Const("count", 0),
        Const("k", 2),
        Loop(n - 2, [
            Load("flag", "k", size=1),
            If("flag", Cmp.EQ, 0, [
                BinOp(BinaryOp.ADD, "count", "count", 1),
            ]),
            BinOp(BinaryOp.ADD, "k", "k", 1),
        ]),
    ] + _finish("count")
    return Module("sieve", [Function("main", body)], globals=["result"])


def random_lcg(scale: int = 1) -> Module:
    """A 32-bit LCG — multiply/add chains."""
    body = [
        Const("x", 123456789),
        Const("acc", 0),
        Loop(400 * scale, [
            BinOp(BinaryOp.MUL, "x", "x", 1103515245),
            BinOp(BinaryOp.ADD, "x", "x", 12345),
            BinOp(BinaryOp.AND, "x", "x", MASK32),
            BinOp(BinaryOp.XOR, "acc", "acc", "x"),
        ]),
    ] + _finish("acc")
    return Module("random", [Function("main", body)], globals=["result"])


def memmove(scale: int = 1) -> Module:
    """Bulk 8-byte copies — load/store balanced, streaming."""
    n = 220 * scale
    body = [
        # build a source pattern
        Const("i", 0),
        Loop(n, [
            BinOp(BinaryOp.SHL, "a", "i", 3),
            BinOp(BinaryOp.MUL, "v", "i", 2654435761),
            BinOp(BinaryOp.AND, "v", "v", MASK32),
            Store("a", "v"),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        # copy it 8 KiB higher
        Const("i", 0),
        Const("acc", 0),
        Loop(n, [
            BinOp(BinaryOp.SHL, "a", "i", 3),
            Load("v", "a"),
            Store("a", "v", offset=32768),
            BinOp(BinaryOp.ADD, "acc", "acc", "v"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
    ] + _finish("acc")
    return Module("memmove", [Function("main", body)], globals=["result"],
                  memory_pages=2)


def base64(scale: int = 1) -> Module:
    """Base64-style encode: 6-bit splits + table lookups + stores."""
    # table at [0,64): identity-ish alphabet; input at [256,...)
    data = bytes((i * 7 + 33) & 0xFF for i in range(64))
    n_groups = 60 * scale
    body = [
        # synthesize input bytes
        Const("i", 0),
        Loop(n_groups * 3, [
            BinOp(BinaryOp.MUL, "v", "i", 31),
            BinOp(BinaryOp.AND, "v", "v", 0xFF),
            Store("i", "v", offset=256, size=1),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        Const("g", 0),
        Const("acc", 0),
        Loop(n_groups, [
            BinOp(BinaryOp.MUL, "in_off", "g", 3),
            Load("b0", "in_off", offset=256, size=1),
            Load("b1", "in_off", offset=257, size=1),
            Load("b2", "in_off", offset=258, size=1),
            # 24-bit group
            BinOp(BinaryOp.SHL, "grp", "b0", 16),
            BinOp(BinaryOp.SHL, "m1", "b1", 8),
            BinOp(BinaryOp.OR, "grp", "grp", "m1"),
            BinOp(BinaryOp.OR, "grp", "grp", "b2"),
            # four 6-bit indices -> table lookups
            BinOp(BinaryOp.SHR, "i0", "grp", 18),
            BinOp(BinaryOp.AND, "i0", "i0", 63),
            Load("c0", "i0", size=1),
            BinOp(BinaryOp.SHR, "i1", "grp", 12),
            BinOp(BinaryOp.AND, "i1", "i1", 63),
            Load("c1", "i1", size=1),
            BinOp(BinaryOp.SHR, "i2", "grp", 6),
            BinOp(BinaryOp.AND, "i2", "i2", 63),
            Load("c2", "i2", size=1),
            BinOp(BinaryOp.AND, "i3", "grp", 63),
            Load("c3", "i3", size=1),
            BinOp(BinaryOp.MUL, "out_off", "g", 4),
            Store("out_off", "c0", offset=4096, size=1),
            Store("out_off", "c1", offset=4097, size=1),
            Store("out_off", "c2", offset=4098, size=1),
            Store("out_off", "c3", offset=4099, size=1),
            BinOp(BinaryOp.ADD, "acc", "acc", "c0"),
            BinOp(BinaryOp.ADD, "acc", "acc", "c3"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
            BinOp(BinaryOp.ADD, "g", "g", 1),
        ]),
    ] + _finish("acc")
    return Module("base64", [Function("main", body)], globals=["result"],
                  data=data, memory_pages=2)


def ctype(scale: int = 1) -> Module:
    """Character classification via a 256-entry table + branches."""
    table = bytes((1 if 48 <= c <= 57 else 2 if 65 <= c <= 122 else 0)
                  for c in range(256))
    body = [
        Const("i", 0),
        Const("digits", 0),
        Const("alpha", 0),
        Loop(500 * scale, [
            BinOp(BinaryOp.MUL, "ch", "i", 97),
            BinOp(BinaryOp.AND, "ch", "ch", 0xFF),
            Load("cls", "ch", size=1),
            If("cls", Cmp.EQ, 1,
               [BinOp(BinaryOp.ADD, "digits", "digits", 1)],
               [If("cls", Cmp.EQ, 2,
                   [BinOp(BinaryOp.ADD, "alpha", "alpha", 1)])]),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        BinOp(BinaryOp.SHL, "acc", "digits", 16),
        BinOp(BinaryOp.OR, "acc", "acc", "alpha"),
    ] + _finish("acc")
    return Module("ctype", [Function("main", body)], globals=["result"],
                  data=table)


def switch(scale: int = 1) -> Module:
    """An 8-way dispatch — branch-predictor stress."""
    cases = []
    for v in range(8):
        cases = [If("sel", Cmp.EQ, v,
                    [BinOp(BinaryOp.ADD, "acc", "acc", (v + 1) * 3)],
                    cases)]
    body = [
        Const("x", 7),
        Const("acc", 0),
        Loop(350 * scale, [
            BinOp(BinaryOp.MUL, "x", "x", 1103515245),
            BinOp(BinaryOp.ADD, "x", "x", 12345),
            BinOp(BinaryOp.AND, "x", "x", MASK32),
            BinOp(BinaryOp.SHR, "sel", "x", 13),
            BinOp(BinaryOp.AND, "sel", "sel", 7),
        ] + cases),
        BinOp(BinaryOp.AND, "acc", "acc", MASK32),
    ] + _finish("acc")
    return Module("switch", [Function("main", body)], globals=["result"])


def minicsv(scale: int = 1) -> Module:
    """CSV scanning: byte loads, comparisons, field/row counting."""
    row = b"12,345,6789,ab,cdef\n"
    data = row * (12 * scale)
    body = [
        Const("i", 0),
        Const("fields", 0),
        Const("rows", 0),
        Loop(len(data), [
            Load("ch", "i", size=1),
            If("ch", Cmp.EQ, 44,
               [BinOp(BinaryOp.ADD, "fields", "fields", 1)],
               [If("ch", Cmp.EQ, 10,
                   [BinOp(BinaryOp.ADD, "rows", "rows", 1)])]),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        BinOp(BinaryOp.SHL, "acc", "rows", 16),
        BinOp(BinaryOp.OR, "acc", "acc", "fields"),
    ] + _finish("acc")
    return Module("minicsv", [Function("main", body)],
                  globals=["result"], data=data)


def ratelimit(scale: int = 1) -> Module:
    """A token bucket: global state, clamping, branches."""
    body = [
        Const("tokens", 0),
        Const("granted", 0),
        Const("x", 99),
        Loop(400 * scale, [
            BinOp(BinaryOp.ADD, "tokens", "tokens", 3),
            If("tokens", Cmp.GT, 50, [Const("tokens", 50)]),
            BinOp(BinaryOp.MUL, "x", "x", 1103515245),
            BinOp(BinaryOp.ADD, "x", "x", 12345),
            BinOp(BinaryOp.AND, "x", "x", MASK32),
            BinOp(BinaryOp.AND, "want", "x", 7),
            If("tokens", Cmp.GE, "want", [
                BinOp(BinaryOp.SUB, "tokens", "tokens", "want"),
                BinOp(BinaryOp.ADD, "granted", "granted", 1),
            ]),
        ]),
    ] + _finish("granted")
    return Module("ratelimit", [Function("main", body)],
                  globals=["result"])


def ackermann(scale: int = 1) -> Module:
    """Call-chain heavy (the recursive original lowered to loops)."""
    leaf = Function("leaf", [
        LoadGlobal("v", "result"),
        BinOp(BinaryOp.ADD, "v", "v", 1),
        BinOp(BinaryOp.AND, "v", "v", MASK32),
        StoreGlobal("result", "v"),
    ])
    mid = Function("mid", [
        Loop(6, [Call("leaf")]),
    ])
    outer = Function("outer", [
        Loop(8, [Call("mid")]),
    ])
    main = Function("main", [
        Const("z", 0),
        StoreGlobal("result", "z"),
        Loop(6 * scale, [Call("outer")]),
    ])
    return Module("ackermann", [main, outer, mid, leaf],
                  globals=["result"])


def _arx_round(a: str, b: str, c: str, d: str, rots) -> List:
    ops = []
    ops += [BinOp(BinaryOp.ADD, a, a, b), BinOp(BinaryOp.AND, a, a, MASK32),
            BinOp(BinaryOp.XOR, d, d, a)]
    ops += rotl(d, rots[0])
    ops += [BinOp(BinaryOp.ADD, c, c, d), BinOp(BinaryOp.AND, c, c, MASK32),
            BinOp(BinaryOp.XOR, b, b, c)]
    ops += rotl(b, rots[1])
    return ops


def _arx_module(name: str, rounds: int, rots, scale: int) -> Module:
    """Shared shape for the ARX ciphers; distinct rotation schedules."""
    state = [f"s{i}" for i in range(8)]
    init = [Const(s, (i + 1) * 0x9E3779B9 & MASK32)
            for i, s in enumerate(state)]
    round_ops: List = []
    for r in range(rounds):
        round_ops += _arx_round(state[0], state[1], state[2], state[3],
                                rots[r % len(rots)])
        round_ops += _arx_round(state[4], state[5], state[6], state[7],
                                rots[(r + 1) % len(rots)])
        round_ops += _arx_round(state[0], state[5], state[2], state[7],
                                rots[(r + 2) % len(rots)])
    body = init + [
        Const("acc", 0),
        Loop(10 * scale, round_ops + [
            BinOp(BinaryOp.XOR, "acc", "acc", state[0]),
            BinOp(BinaryOp.XOR, "acc", "acc", state[7]),
        ]),
    ] + _finish("acc")
    return Module(name, [Function("main", body)], globals=["result"])


def xchacha20(scale: int = 1) -> Module:
    return _arx_module("xchacha20", rounds=4,
                       rots=[(16, 12), (8, 7)], scale=scale)


def xblabla20(scale: int = 1) -> Module:
    # BlaBla's 64-bit rotation schedule folded into 32-bit lanes.
    return _arx_module("xblabla20", rounds=4,
                       rots=[(13, 24), (16, 31)], scale=scale)


def blake3_scalar(scale: int = 1) -> Module:
    """BLAKE3-ish compression: ARX rounds + message-word loads."""
    msg_init = [
        Const("mi", 0),
        Loop(16, [
            BinOp(BinaryOp.SHL, "ma", "mi", 2),
            BinOp(BinaryOp.MUL, "mv", "mi", 0x6A09E667),
            BinOp(BinaryOp.AND, "mv", "mv", MASK32),
            Store("ma", "mv", size=4),
            BinOp(BinaryOp.ADD, "mi", "mi", 1),
        ]),
    ]
    state = [f"v{i}" for i in range(8)]
    init = [Const(s, (i * 0x510E527F + 1) & MASK32)
            for i, s in enumerate(state)]
    round_ops: List = [
        BinOp(BinaryOp.AND, "w", "acc", 15 << 2),
        Load("m", "w", size=4),
        BinOp(BinaryOp.XOR, state[0], state[0], "m"),
    ]
    for r in range(3):
        round_ops += _arx_round(state[0], state[1], state[2], state[3],
                                (16, 12))
        round_ops += _arx_round(state[4], state[5], state[6], state[7],
                                (8, 7))
    body = msg_init + init + [
        Const("acc", 1),
        Loop(12 * scale, round_ops + [
            BinOp(BinaryOp.ADD, "acc", "acc", state[3]),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
        ]),
    ] + _finish("acc")
    return Module("blake3-scalar", [Function("main", body)],
                  globals=["result"])


def keccak(scale: int = 1) -> Module:
    """Keccak-f theta-like pass over a 25-lane state in memory."""
    body = [
        Const("i", 0),
        Loop(25, [
            BinOp(BinaryOp.SHL, "a", "i", 3),
            BinOp(BinaryOp.MUL, "v", "i", 0x428A2F98),
            BinOp(BinaryOp.AND, "v", "v", MASK32),
            Store("a", "v"),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        Const("acc", 0),
        Loop(14 * scale, [
            Const("x", 0),
            Loop(5, [
                BinOp(BinaryOp.SHL, "a0", "x", 3),
                Load("c", "a0"),
                BinOp(BinaryOp.ADD, "a1", "a0", 40),
                Load("t", "a1"),
                BinOp(BinaryOp.XOR, "c", "c", "t"),
                BinOp(BinaryOp.ADD, "a2", "a0", 80),
                Load("t", "a2"),
                BinOp(BinaryOp.XOR, "c", "c", "t"),
            ] + rotl("c", 1) + [
                Store("a0", "c"),
                BinOp(BinaryOp.ADD, "x", "x", 1),
            ]),
            Load("fin", 0),
            BinOp(BinaryOp.XOR, "acc", "acc", "fin"),
            BinOp(BinaryOp.AND, "acc", "acc", MASK32),
        ]),
    ] + _finish("acc")
    return Module("keccak", [Function("main", body)], globals=["result"])


def gimli(scale: int = 1) -> Module:
    """Gimli-style SP-box over a 12-word column state in memory."""
    body = [
        Const("i", 0),
        Loop(12, [
            BinOp(BinaryOp.SHL, "a", "i", 2),
            BinOp(BinaryOp.MUL, "v", "i", 0x9E3779B9),
            BinOp(BinaryOp.AND, "v", "v", MASK32),
            Store("a", "v", size=4),
            BinOp(BinaryOp.ADD, "i", "i", 1),
        ]),
        Const("acc", 0),
        Loop(16 * scale, [
            Const("col", 0),
            Loop(4, [
                BinOp(BinaryOp.SHL, "a", "col", 2),
                Load("x", "a", size=4),
                Load("y", "a", offset=16, size=4),
                Load("z", "a", offset=32, size=4),
            ] + rotl("x", 24) + rotl("y", 9) + [
                BinOp(BinaryOp.SHL, "t", "z", 1),
                BinOp(BinaryOp.AND, "u", "y", "z"),
                BinOp(BinaryOp.SHL, "u", "u", 2),
                BinOp(BinaryOp.XOR, "nz", "x", "t"),
                BinOp(BinaryOp.XOR, "nz", "nz", "u"),
                BinOp(BinaryOp.AND, "nz", "nz", MASK32),
                Store("a", "nz", offset=32, size=4),
                BinOp(BinaryOp.OR, "u", "x", "z"),
                BinOp(BinaryOp.SHL, "u", "u", 1),
                BinOp(BinaryOp.XOR, "ny", "y", "x"),
                BinOp(BinaryOp.XOR, "ny", "ny", "u"),
                BinOp(BinaryOp.AND, "ny", "ny", MASK32),
                Store("a", "ny", offset=16, size=4),
                BinOp(BinaryOp.AND, "u", "x", "y"),
                BinOp(BinaryOp.SHL, "u", "u", 3),
                BinOp(BinaryOp.XOR, "nx", "z", "y"),
                BinOp(BinaryOp.XOR, "nx", "nx", "u"),
                BinOp(BinaryOp.AND, "nx", "nx", MASK32),
                Store("a", "nx", size=4),
                BinOp(BinaryOp.ADD, "col", "col", 1),
            ]),
            Load("fin", 0, size=4),
            BinOp(BinaryOp.XOR, "acc", "acc", "fin"),
        ]),
    ] + _finish("acc")
    return Module("gimli", [Function("main", body)], globals=["result"])


#: name -> builder, in the paper's Fig. 2 ordering.
SIGHTGLASS_BENCHMARKS: Dict[str, Callable[[int], Module]] = {
    "blake3-scalar": blake3_scalar,
    "ackermann": ackermann,
    "base64": base64,
    "ctype": ctype,
    "fib2": fib2,
    "gimli": gimli,
    "keccak": keccak,
    "memmove": memmove,
    "minicsv": minicsv,
    "nestedloop": nestedloop,
    "random": random_lcg,
    "ratelimit": ratelimit,
    "sieve": sieve,
    "switch": switch,
    "xblabla20": xblabla20,
    "xchacha20": xchacha20,
}
