"""Evaluation workloads: Sightglass, SPEC-like, rendering, FaaS, NGINX."""

from .faas_apps import APP_SCALES, FAAS_APPS
from .font import graphite_reflow
from .image import COMPRESSION_ROUNDS, RESOLUTIONS, jpeg_decode
from .nginx import FILE_SIZES, SCHEMES, NginxModel
from .sightglass import SIGHTGLASS_BENCHMARKS
from .spec import SPEC_BENCHMARKS

__all__ = [
    "SIGHTGLASS_BENCHMARKS", "SPEC_BENCHMARKS", "jpeg_decode",
    "RESOLUTIONS", "COMPRESSION_ROUNDS", "graphite_reflow", "FAAS_APPS",
    "APP_SCALES", "NginxModel", "FILE_SIZES", "SCHEMES",
]
