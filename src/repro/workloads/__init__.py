"""Evaluation workloads: Sightglass, SPEC-like, rendering, FaaS, NGINX."""

from .faas_apps import APP_SCALES, FAAS_APPS
from .font import graphite_reflow
from .image import COMPRESSION_ROUNDS, RESOLUTIONS, jpeg_decode
from .nginx import FILE_SIZES, SCHEMES, NginxModel
from .scenarios import (
    CHURN_SCHEMES,
    RENDER_JOBS,
    RENDER_SCHEMES,
    ConnectionProfile,
    build_connection_profiles,
    build_render_profiles,
    churn_requests,
    churn_scheme_costs,
    connection_service_cycles,
    measure_render_jobs,
    render_requests,
    render_scheme_costs,
)
from .sightglass import SIGHTGLASS_BENCHMARKS
from .spec import SPEC_BENCHMARKS

__all__ = [
    "SIGHTGLASS_BENCHMARKS", "SPEC_BENCHMARKS", "jpeg_decode",
    "RESOLUTIONS", "COMPRESSION_ROUNDS", "graphite_reflow", "FAAS_APPS",
    "APP_SCALES", "NginxModel", "FILE_SIZES", "SCHEMES",
    "CHURN_SCHEMES", "RENDER_SCHEMES", "RENDER_JOBS",
    "ConnectionProfile", "connection_service_cycles",
    "build_connection_profiles", "churn_requests", "churn_scheme_costs",
    "build_render_profiles", "measure_render_jobs", "render_requests",
    "render_scheme_costs",
]
