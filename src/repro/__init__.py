"""repro — a reproduction of "Going beyond the Limits of SFI:
Flexible and Secure Hardware-Assisted In-Process Isolation with HFI"
(Narayan et al., ASPLOS 2023).

Layered public API:

* :mod:`repro.core` — the HFI ISA extension semantics (the paper's
  contribution).
* :mod:`repro.isa`, :mod:`repro.cpu` — the x86-64-like ISA and the
  cycle-level simulator (the gem5 analogue).
* :mod:`repro.os`, :mod:`repro.mpk` — OS and Intel-MPK substrates.
* :mod:`repro.wasm` — the Wasm-like SFI toolchain with pluggable
  isolation strategies.
* :mod:`repro.runtime` — trusted runtimes: sandbox manager and the
  FaaS platform model.
* :mod:`repro.attacks`, :mod:`repro.workloads` — the Spectre test
  suite and the evaluation workloads.
"""

from .params import DEFAULT_PARAMS, MachineParams, skylake, tigerlake

__version__ = "1.0.0"

__all__ = ["MachineParams", "DEFAULT_PARAMS", "skylake", "tigerlake",
           "__version__"]
