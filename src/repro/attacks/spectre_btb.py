"""In-place Spectre-BTB (branch target injection), after TransientFail.

The victim dispatches through a function pointer.  The attacker first
makes the pointer target a *disclosure gadget* (training the BTB), then
switches it to a benign target: the BTB still predicts the gadget, so
the gadget runs speculatively and loads a secret-indexed probe line.

Two HFI defences are demonstrated, matching §4.1:

* With the secret outside the sandbox's implicit data regions, the
  gadget's speculative load faults before any cache update.
* With the gadget *outside the code regions*, decode turns its
  micro-ops into a faulting NOP, so it never executes at all — even
  speculatively.

(The paper notes gem5's BTB modelling is too coarse for the raw
TransientFail PoC and models the attack with concrete control flow;
our BTB does predict indirect targets, so we run the real shape.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from ..core.encoding import encode_region, encode_sandbox
from ..cpu.machine import Cpu
from ..isa import Assembler, Imm, Mem, Reg
from ..os.address_space import AddressSpace, Prot
from ..params import DEFAULT_PARAMS, MachineParams
from .cache_channel import (
    ProbeArray,
    flush_probe,
    hit_threshold,
    recover_byte,
    reload_latencies,
)
from .spectre_pht import AttackResult

_CODE_BASE = 0x40_0000
_GADGET_BASE = 0x48_0000     # separate 64K block: can be excluded from
                             # the code regions to show the fetch defence
_DATA_BASE = 0x10_0000
_PROBE_BASE = 0x20_0000
_SECRET_BASE = 0x30_0000
_STACK_BASE = 0x0F_0000
_DESC_BASE = 0x0E_0000

_FNPTR_ADDR = _DATA_BASE
_SECRET_PTR_ADDR = _DATA_BASE + 8
_DUMMY_ADDR = _DATA_BASE + 128   # in-bounds byte the training runs read


class SpectreBtbAttack:
    """Builds victim + gadget, trains the BTB, attacks, reloads."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 protect_with_hfi: bool = False,
                 gadget_in_code_region: bool = True):
        self.params = params
        self.protect_with_hfi = protect_with_hfi
        self.gadget_in_code_region = gadget_in_code_region
        self.space = AddressSpace(params)
        self.cpu = Cpu(params, memory=self.space)
        self.probe = ProbeArray(base=_PROBE_BASE)
        self._build_memory()
        self._build_programs()

    def _build_memory(self) -> None:
        space = self.space
        space.mmap(1 << 16, Prot.rw(), addr=_DATA_BASE, name="victim-data")
        space.mmap(self.probe.bytes_needed + 4096, Prot.rw(),
                   addr=_PROBE_BASE, name="probe")
        space.mmap(1 << 12, Prot.rw(), addr=_SECRET_BASE, name="secret")
        space.mmap(1 << 16, Prot.rw(), addr=_STACK_BASE, name="stack")
        space.mmap(1 << 12, Prot.rw(), addr=_DESC_BASE, name="descriptors")
        space.write(_DUMMY_ADDR, 0, 1)
        if self.protect_with_hfi:
            self._stage_descriptors()

    def _stage_descriptors(self) -> None:
        space = self.space
        code0 = ImplicitCodeRegion.covering(_CODE_BASE, 1 << 16)
        if self.gadget_in_code_region:
            code1 = ImplicitCodeRegion.covering(_GADGET_BASE, 1 << 16)
        else:
            # second code slot points elsewhere: gadget not executable
            code1 = ImplicitCodeRegion.covering(_CODE_BASE, 1 << 16)
        data = ImplicitDataRegion.covering(_DATA_BASE, 1 << 16,
                                           read=True, write=True)
        probe = ImplicitDataRegion.covering(
            _PROBE_BASE, self.probe.bytes_needed + 4096,
            read=True, write=True)
        stack = ImplicitDataRegion.covering(_STACK_BASE, 1 << 16,
                                            read=True, write=True)
        space.write_bytes(_DESC_BASE + 0, encode_region(code0))
        space.write_bytes(_DESC_BASE + 24, encode_region(code1))
        space.write_bytes(_DESC_BASE + 48, encode_region(data))
        space.write_bytes(_DESC_BASE + 72, encode_region(probe))
        space.write_bytes(_DESC_BASE + 96, encode_region(stack))
        space.write_bytes(_DESC_BASE + 120, encode_sandbox(
            SandboxFlags(is_hybrid=True, is_serialized=True)))

    def _build_programs(self) -> None:
        asm = Assembler(base=_CODE_BASE)
        if self.protect_with_hfi:
            for slot, (number, off) in enumerate(
                    [(0, 0), (1, 24), (2, 48), (3, 72), (4, 96)]):
                asm.mov(Reg.RDI, Imm(_DESC_BASE + off))
                asm.hfi_set_region(number, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 120))
            asm.hfi_enter(Reg.RDI)
        asm.mov(Reg.R8, Mem(disp=_FNPTR_ADDR))
        asm.jmp(Reg.R8)                      # the BTB-predicted dispatch
        asm.label("legit")
        if self.protect_with_hfi:
            asm.hfi_exit()
        asm.hlt()
        self.victim = asm.assemble()
        self.legit_addr = self.victim.labels["legit"]

        gadget = Assembler(base=_GADGET_BASE)
        gadget.mov(Reg.R9, Mem(disp=_SECRET_PTR_ADDR))
        gadget.mov(Reg.RAX, Mem(base=Reg.R9, size=1))
        gadget.shl(Reg.RAX, Imm(9))
        gadget.mov(Reg.RSI, Mem(base=Reg.RAX, disp=_PROBE_BASE, size=1))
        if self.protect_with_hfi:
            gadget.hfi_exit()
        gadget.hlt()
        self.gadget = gadget.assemble()

        self.cpu.load_program(self.victim)
        self.cpu.load_program(self.gadget)
        self.cpu.regs.write(Reg.RSP, _STACK_BASE + (1 << 16) - 64)

    # ------------------------------------------------------------------
    def _invoke_victim(self, fn_target: int, secret_ptr: int) -> None:
        self.space.write(_FNPTR_ADDR, fn_target, 8)
        self.space.write(_SECRET_PTR_ADDR, secret_ptr, 8)
        self.cpu.run(self.victim.base, max_instructions=200)

    def train(self, rounds: int = 6) -> None:
        """Run the dispatch with the gadget as the *architectural*
        target (reading a dummy byte) so the BTB learns it."""
        for _ in range(rounds):
            self._invoke_victim(self.gadget.base, _DUMMY_ADDR)

    def attack(self, secret_value: int = ord("S"),
               train_rounds: int = 6) -> AttackResult:
        self.space.write(_SECRET_BASE, secret_value, 1)
        self.train(train_rounds)
        flush_probe(self.cpu, self.probe)
        self._invoke_victim(self.legit_addr, _SECRET_BASE)
        latencies = reload_latencies(self.cpu, self.probe)
        threshold = hit_threshold(self.cpu)
        hits = recover_byte(latencies, threshold)
        candidates = dict(hits)
        candidates.pop(0, None)   # dummy byte touched during training
        leaked = min(candidates, key=candidates.get) if candidates else None
        return AttackResult(latencies=latencies, threshold=threshold,
                            hits=hits, leaked_value=leaked)
