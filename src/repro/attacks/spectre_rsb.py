"""Spectre-RSB: return-address mispredictions as the speculation source.

Beyond the paper's PHT/BTB evaluation (§5.3), SafeSide also ships RSB
variants; since our CPU models a return-stack buffer, we reproduce the
in-place shape:

The victim function *switches stacks* before returning, so the
architectural return target differs from the RSB's prediction (the
instruction after the call site).  The attacker arranges a disclosure
gadget at exactly that predicted location: it runs speculatively,
loads a secret-indexed probe line, and flush+reload recovers the byte.
HFI regions block the gadget's secret load the same way as for
PHT/BTB — before any cache fill.
"""

from __future__ import annotations

from typing import Optional

from ..core import ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from ..core.encoding import encode_region, encode_sandbox
from ..cpu.machine import Cpu
from ..isa import Assembler, Imm, Mem, Reg
from ..os.address_space import AddressSpace, Prot
from ..params import DEFAULT_PARAMS, MachineParams
from .cache_channel import (
    ProbeArray,
    flush_probe,
    hit_threshold,
    recover_byte,
    reload_latencies,
)
from .spectre_pht import AttackResult

_CODE_BASE = 0x40_0000
_DATA_BASE = 0x10_0000
_PROBE_BASE = 0x20_0000
_SECRET_BASE = 0x30_0000
_STACK_BASE = 0x0F_0000
_ALT_STACK = 0x0F_8000
_DESC_BASE = 0x0E_0000

_SECRET_PTR_ADDR = _DATA_BASE
_DUMMY_ADDR = _DATA_BASE + 64


class SpectreRsbAttack:
    """Builds the stack-switching victim and runs the leak."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 protect_with_hfi: bool = False):
        self.params = params
        self.protect_with_hfi = protect_with_hfi
        self.space = AddressSpace(params)
        self.cpu = Cpu(params, memory=self.space)
        self.probe = ProbeArray(base=_PROBE_BASE)
        self._build_memory()
        self._build_program()

    def _build_memory(self) -> None:
        space = self.space
        space.mmap(1 << 16, Prot.rw(), addr=_DATA_BASE, name="victim")
        space.mmap(self.probe.bytes_needed + 4096, Prot.rw(),
                   addr=_PROBE_BASE, name="probe")
        space.mmap(1 << 12, Prot.rw(), addr=_SECRET_BASE, name="secret")
        space.mmap(1 << 16, Prot.rw(), addr=_STACK_BASE, name="stack")
        space.mmap(1 << 12, Prot.rw(), addr=_DESC_BASE, name="desc")
        space.write(_DUMMY_ADDR, 0, 1)
        if self.protect_with_hfi:
            code = ImplicitCodeRegion.covering(_CODE_BASE, 1 << 16)
            data = ImplicitDataRegion.covering(_DATA_BASE, 1 << 16,
                                               read=True, write=True)
            probe = ImplicitDataRegion.covering(
                _PROBE_BASE, self.probe.bytes_needed + 4096,
                read=True, write=True)
            stack = ImplicitDataRegion.covering(_STACK_BASE, 1 << 16,
                                                read=True, write=True)
            space.write_bytes(_DESC_BASE + 0, encode_region(code))
            space.write_bytes(_DESC_BASE + 24, encode_region(data))
            space.write_bytes(_DESC_BASE + 48, encode_region(probe))
            space.write_bytes(_DESC_BASE + 72, encode_region(stack))
            space.write_bytes(_DESC_BASE + 96, encode_sandbox(
                SandboxFlags(is_hybrid=True, is_serialized=True)))

    def _build_program(self) -> None:
        asm = Assembler(base=_CODE_BASE)
        if self.protect_with_hfi:
            for number, off in ((0, 0), (2, 24), (3, 48), (4, 72)):
                asm.mov(Reg.RDI, Imm(_DESC_BASE + off))
                asm.hfi_set_region(number, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 96))
            asm.hfi_enter(Reg.RDI)
        asm.call("victim")
        # --- the disclosure gadget sits at the *predicted* return ---
        asm.mov(Reg.R9, Mem(disp=_SECRET_PTR_ADDR))
        asm.mov(Reg.RAX, Mem(base=Reg.R9, size=1))
        asm.shl(Reg.RAX, Imm(9))
        asm.mov(Reg.RSI, Mem(base=Reg.RAX, disp=_PROBE_BASE, size=1))
        asm.label("after_gadget")
        if self.protect_with_hfi:
            asm.hfi_exit()
        asm.hlt()
        asm.label("landing")                 # architectural return
        if self.protect_with_hfi:
            asm.hfi_exit()
        asm.hlt()
        asm.label("victim")
        # overwrite the return address: the RSB still predicts the
        # gadget address (call site + 1)
        asm.mov(Reg.R8, Imm(0))              # patched to 'landing'
        asm.mov(Mem(base=Reg.RSP), Reg.R8)
        asm.ret()
        self.program = asm.assemble()
        landing = self.program.labels["landing"]
        victim_idx = next(i for i, ins in
                          enumerate(self.program.instructions)
                          if ins.label == "victim")
        self.program.instructions[victim_idx].operands = (
            Reg.R8, Imm(landing))
        self.cpu.load_program(self.program)
        self.cpu.regs.write(Reg.RSP, _STACK_BASE + (1 << 16) - 64)

    # ------------------------------------------------------------------
    def _invoke(self, secret_ptr: int) -> None:
        self.space.write(_SECRET_PTR_ADDR, secret_ptr, 8)
        self.cpu.regs.write(Reg.RSP, _STACK_BASE + (1 << 16) - 64)
        self.cpu.run(self.program.base, max_instructions=200)

    def attack(self, secret_value: int = ord("R")) -> AttackResult:
        self.space.write(_SECRET_BASE, secret_value, 1)
        flush_probe(self.cpu, self.probe)
        self._invoke(_SECRET_BASE)
        latencies = reload_latencies(self.cpu, self.probe)
        threshold = hit_threshold(self.cpu)
        hits = recover_byte(latencies, threshold)
        leaked = min(hits, key=hits.get) if hits else None
        return AttackResult(latencies=latencies, threshold=threshold,
                            hits=hits, leaked_value=leaked)
