"""Spectre attack suite (SafeSide / TransientFail analogues, §5.3)."""

from .cache_channel import (
    PROBE_SLOTS,
    PROBE_STRIDE,
    ProbeArray,
    flush_probe,
    hit_threshold,
    recover_byte,
    reload_latencies,
)
from .spectre_btb import SpectreBtbAttack
from .spectre_pht import AttackResult, SpectrePhtAttack
from .spectre_rsb import SpectreRsbAttack

__all__ = [
    "ProbeArray", "flush_probe", "reload_latencies", "hit_threshold",
    "recover_byte", "PROBE_SLOTS", "PROBE_STRIDE", "AttackResult",
    "SpectrePhtAttack", "SpectreBtbAttack", "SpectreRsbAttack",
]
