"""The flush+reload cache side channel used by the Spectre PoCs (§5.3).

The transmitter is a speculative load of ``probe_base + secret*stride``;
the receiver flushes the probe array, lets the victim run, then times
one load per slot.  A slot whose latency is below the threshold was
filled during speculation — its index is the leaked byte.

Timing here is exactly what an ``rdtsc``-bracketed load observes on the
simulator: base cost + the cache hierarchy's access latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cpu.machine import Cpu

#: Slot spacing: one byte value per cache-line-disjoint slot (the
#: classic 512-byte stride defeats adjacent-line prefetching).
PROBE_STRIDE = 512
PROBE_SLOTS = 256


@dataclass
class ProbeArray:
    """A flush+reload probe array in the victim's address space."""

    base: int
    stride: int = PROBE_STRIDE
    slots: int = PROBE_SLOTS

    @property
    def bytes_needed(self) -> int:
        return self.stride * self.slots

    def slot_addr(self, value: int) -> int:
        return self.base + value * self.stride


def flush_probe(cpu: Cpu, probe: ProbeArray) -> None:
    """clflush every probe slot (receiver-side, pre-victim)."""
    for value in range(probe.slots):
        cpu.caches.flush_line(probe.slot_addr(value))


def reload_latencies(cpu: Cpu, probe: ProbeArray) -> List[int]:
    """Time one load per slot, as an rdtsc-bracketed loop would.

    Returns the per-slot access latencies in cycles.  (The measurement
    itself fills lines, but each slot is measured before its own fill,
    so a single pass is sound.)
    """
    latencies = []
    for value in range(probe.slots):
        latencies.append(cpu.params.base_cycles
                         + cpu.caches.data_access(probe.slot_addr(value)))
    return latencies


def hit_threshold(cpu: Cpu) -> int:
    """Latency below which a slot counts as cached (L2 hit or better)."""
    return cpu.params.l2_hit_cycles + cpu.params.base_cycles + 1


def recover_byte(latencies: List[int], threshold: int) -> Dict[int, int]:
    """Map byte-value -> latency for every slot under the threshold."""
    return {value: lat for value, lat in enumerate(latencies)
            if lat <= threshold}
