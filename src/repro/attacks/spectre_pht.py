"""In-place Spectre-PHT (bounds-check bypass), after Google SafeSide.

The victim is the canonical gadget::

    if (x < array1_size)
        y = array2[array1[x] * 512];

The attacker trains the branch with in-bounds ``x``, then supplies an
out-of-bounds ``x`` whose ``array1[x]`` aliases a secret byte in host
memory.  On the mispredicted path the two loads execute speculatively
and the secret-indexed probe line is filled — unless HFI's implicit
data regions reject the first load *before any cache update* (§4.1),
in which case no probe slot ever dips below the hit threshold.

This reproduces the paper's §5.3 experiment and the Fig. 7 latency
plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import ImplicitCodeRegion, ImplicitDataRegion, SandboxFlags
from ..core.encoding import encode_region, encode_sandbox
from ..cpu.machine import Cpu
from ..isa import Assembler, Imm, Mem, Reg
from ..os.address_space import AddressSpace, Prot
from ..params import DEFAULT_PARAMS, MachineParams
from .cache_channel import (
    ProbeArray,
    flush_probe,
    hit_threshold,
    recover_byte,
    reload_latencies,
)

_CODE_BASE = 0x40_0000
_DATA_BASE = 0x10_0000      # x, array1_size, array1 (sandbox-visible)
_PROBE_BASE = 0x20_0000     # array2 (sandbox-visible)
_SECRET_BASE = 0x30_0000    # host secret (NOT covered by HFI regions)
_STACK_BASE = 0x0F_0000
_DESC_BASE = 0x0E_0000

_X_ADDR = _DATA_BASE
_SIZE_ADDR = _DATA_BASE + 8
_ARRAY1_ADDR = _DATA_BASE + 64


@dataclass
class AttackResult:
    """Outcome of one leak attempt."""

    latencies: List[int]
    threshold: int
    hits: Dict[int, int]
    leaked_value: Optional[int]

    @property
    def leaked(self) -> bool:
        return self.leaked_value is not None


class SpectrePhtAttack:
    """Builds the victim, trains the PHT, runs the attack, reloads."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 protect_with_hfi: bool = False,
                 array1_size: int = 16):
        self.params = params
        self.protect_with_hfi = protect_with_hfi
        self.array1_size = array1_size
        self.space = AddressSpace(params)
        self.cpu = Cpu(params, memory=self.space)
        self.probe = ProbeArray(base=_PROBE_BASE)
        self._build_memory()
        self._build_victim()

    # ------------------------------------------------------------------
    def _build_memory(self) -> None:
        space = self.space
        space.mmap(1 << 16, Prot.rw(), addr=_DATA_BASE, name="victim-data")
        space.mmap(self.probe.bytes_needed + 4096, Prot.rw(),
                   addr=_PROBE_BASE, name="probe")
        space.mmap(1 << 12, Prot.rw(), addr=_SECRET_BASE, name="secret")
        space.mmap(1 << 16, Prot.rw(), addr=_STACK_BASE, name="stack")
        space.mmap(1 << 12, Prot.rw(), addr=_DESC_BASE, name="descriptors")
        space.write(_SIZE_ADDR, self.array1_size, 8)
        for i in range(self.array1_size):
            space.write(_ARRAY1_ADDR + i, i & 0xFF, 1)
        if self.protect_with_hfi:
            self._stage_descriptors()

    def _stage_descriptors(self) -> None:
        """Regions covering everything the victim needs — but not the
        secret (the host protects it exactly as §5.3 describes)."""
        space = self.space
        code = ImplicitCodeRegion.covering(_CODE_BASE, 1 << 16)
        data = ImplicitDataRegion.covering(_DATA_BASE, 1 << 16,
                                           read=True, write=True)
        probe = ImplicitDataRegion.covering(
            _PROBE_BASE, self.probe.bytes_needed + 4096,
            read=True, write=True)
        stack = ImplicitDataRegion.covering(_STACK_BASE, 1 << 16,
                                            read=True, write=True)
        space.write_bytes(_DESC_BASE + 0, encode_region(code))
        space.write_bytes(_DESC_BASE + 24, encode_region(data))
        space.write_bytes(_DESC_BASE + 48, encode_region(probe))
        space.write_bytes(_DESC_BASE + 72, encode_region(stack))
        space.write_bytes(_DESC_BASE + 96, encode_sandbox(
            SandboxFlags(is_hybrid=True, is_serialized=True)))

    def _build_victim(self) -> None:
        asm = Assembler(base=_CODE_BASE)
        if self.protect_with_hfi:
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 0))
            asm.hfi_set_region(0, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 24))
            asm.hfi_set_region(2, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 48))
            asm.hfi_set_region(3, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 72))
            asm.hfi_set_region(4, Reg.RDI)
            asm.mov(Reg.RDI, Imm(_DESC_BASE + 96))
            asm.hfi_enter(Reg.RDI)
        # --- the SafeSide gadget ---
        asm.mov(Reg.RBX, Mem(disp=_X_ADDR))          # x
        asm.mov(Reg.RCX, Mem(disp=_SIZE_ADDR))       # array1_size
        asm.cmp(Reg.RBX, Reg.RCX)
        asm.jae("done")                              # bounds check
        asm.mov(Reg.RAX, Mem(base=Reg.RBX, disp=_ARRAY1_ADDR, size=1))
        asm.shl(Reg.RAX, Imm(9))                     # * 512
        asm.mov(Reg.RSI, Mem(base=Reg.RAX, disp=_PROBE_BASE, size=1))
        asm.label("done")
        if self.protect_with_hfi:
            asm.hfi_exit()
        asm.hlt()
        self.program = asm.assemble()
        self.cpu.load_program(self.program)
        self.cpu.regs.write(Reg.RSP, _STACK_BASE + (1 << 16) - 64)

    # ------------------------------------------------------------------
    def plant_secret(self, value: int) -> int:
        """Write the secret byte into host memory; returns the
        out-of-bounds x that aliases it through array1."""
        self.space.write(_SECRET_BASE, value, 1)
        return _SECRET_BASE - _ARRAY1_ADDR

    def _invoke_victim(self, x: int) -> None:
        self.space.write(_X_ADDR, x, 8)
        self.cpu.run(self.program.base, max_instructions=100)

    def train(self, rounds: int = 8) -> None:
        """Teach the PHT that the bounds check passes."""
        for i in range(rounds):
            self._invoke_victim(i % self.array1_size)

    def attack(self, secret_value: int = ord("I"),
               train_rounds: int = 8) -> AttackResult:
        """Full in-place Spectre-PHT attempt; returns the evidence."""
        oob_x = self.plant_secret(secret_value)
        self.train(train_rounds)
        flush_probe(self.cpu, self.probe)
        self._invoke_victim(oob_x)
        latencies = reload_latencies(self.cpu, self.probe)
        threshold = hit_threshold(self.cpu)
        hits = recover_byte(latencies, threshold)
        # The probe was flushed *after* training, so the only warm slot
        # is the one the speculative load filled.
        leaked = min(hits, key=hits.get) if hits else None
        return AttackResult(latencies=latencies, threshold=threshold,
                            hits=hits, leaked_value=leaked)
