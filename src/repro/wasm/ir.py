"""wir — a Wasm-like structured IR.

This is the reproduction's stand-in for WebAssembly modules: functions
over 64-bit locals and module globals, with loads/stores into a linear
*sandbox memory* addressed by 32-bit offsets, structured control flow,
and explicit host-call transition points.  The compiler lowers it to
the simulator ISA under a pluggable isolation strategy — exactly the
decision surface Wasm2c/Wasmtime/Lucet expose in the paper.

Key Wasm-inherited properties the IR preserves:

* Linear-memory addresses are 32-bit values plus a 32-bit constant
  offset, so ``addr + offset`` maxes out at ``2^33 - 2`` — the fact the
  guard-page scheme relies on (§2).
* Code cannot express raw pointers into host memory: every memory op
  goes through the isolation strategy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

Value = Union[str, int]  # a local variable name or an integer literal


class BinaryOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"


class Cmp(enum.Enum):
    EQ = "eq"
    NE = "ne"
    LT = "lt"    # signed
    LE = "le"
    GT = "gt"
    GE = "ge"
    LTU = "ltu"  # unsigned
    GEU = "geu"


@dataclass
class Const:
    """``dst = value``"""
    dst: str
    value: int


@dataclass
class Move:
    """``dst = src``"""
    dst: str
    src: Value


@dataclass
class BinOp:
    """``dst = a <op> b``"""
    op: BinaryOp
    dst: str
    a: Value
    b: Value


@dataclass
class Load:
    """``dst = memories[memory][addr + offset]`` — a linear-memory load.

    ``addr`` is a 32-bit dynamic value (64-bit under Memory64);
    ``offset`` a constant.  ``memory`` selects a linear memory: 0 is
    the default; 1+ are the Wasm multi-memory proposal's extra
    memories (paper §2's footprint discussion).
    """
    dst: str
    addr: Value
    offset: int = 0
    size: int = 8
    memory: int = 0


@dataclass
class Store:
    """``memories[memory][addr + offset] = src``"""
    addr: Value
    src: Value
    offset: int = 0
    size: int = 8
    memory: int = 0


@dataclass
class LoadGlobal:
    """``dst = globals[name]``"""
    dst: str
    name: str


@dataclass
class StoreGlobal:
    """``globals[name] = src``"""
    name: str
    src: Value


@dataclass
class Loop:
    """Run ``body`` exactly ``count`` times (count may be a local)."""
    count: Value
    body: List["Op"]


@dataclass
class If:
    """``if a <cmp> b: then_body else: else_body``"""
    a: Value
    cmp: Cmp
    b: Value
    then_body: List["Op"]
    else_body: List["Op"] = field(default_factory=list)


@dataclass
class Call:
    """Call another function in the same module (no arguments; data is
    exchanged through globals or linear memory, as Wasm2c-style
    lowering would do for the workloads we model)."""
    func: str


@dataclass
class HostCall:
    """A transition out of the sandbox and back — the springboard /
    trampoline point where isolation strategies pay their context
    switch cost (§3.3.1).  ``host_cycles`` models the host-side work."""
    host_cycles: int = 20


@dataclass
class Return:
    pass


Op = Union[Const, Move, BinOp, Load, Store, LoadGlobal, StoreGlobal,
           Loop, If, Call, HostCall, Return]


@dataclass
class Function:
    name: str
    body: List[Op]


@dataclass
class Module:
    """A wir module: functions + globals + linear-memory requirements."""

    name: str
    functions: List[Function]
    globals: List[str] = field(default_factory=list)
    #: Initial linear memory, in 64 KiB Wasm pages.  May exceed the
    #: 32-bit space under the Memory64 proposal (HFI large regions
    #: support it; the guard-page scheme cannot, §2).
    memory_pages: int = 16
    #: Initial bytes written at offset 0 of linear memory.
    data: bytes = b""
    #: Extra linear memories (multi-memory proposal), pages each.
    extra_memories: List[int] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in module {self.name!r}")

    @property
    def memory_bytes(self) -> int:
        return self.memory_pages * 65536


class ValidationError(Exception):
    """The module references undefined locals/globals/functions."""


def validate(module: Module) -> None:
    """Reject modules with undefined names, bad memory indices, or
    negative loop counts."""
    func_names = {fn.name for fn in module.functions}
    globals_set = set(module.globals)
    n_memories = 1 + len(module.extra_memories)

    def visit(ops: Sequence[Op], defined: set) -> None:
        for op in ops:
            for value in _uses(op):
                if isinstance(value, str) and value not in defined:
                    raise ValidationError(
                        f"use of undefined local {value!r}")
            if isinstance(op, (Load, Store)):
                if not 0 <= op.memory < n_memories:
                    raise ValidationError(
                        f"memory index {op.memory} out of range "
                        f"(module has {n_memories})")
            if isinstance(op, (Const, Move, BinOp, Load, LoadGlobal)):
                defined.add(op.dst)
            if isinstance(op, (LoadGlobal, StoreGlobal)):
                if op.name not in globals_set:
                    raise ValidationError(f"undefined global {op.name!r}")
            if isinstance(op, Call) and op.func not in func_names:
                raise ValidationError(f"undefined function {op.func!r}")
            if isinstance(op, Loop):
                if isinstance(op.count, int) and op.count < 0:
                    raise ValidationError("negative loop count")
                visit(op.body, defined)
            if isinstance(op, If):
                then_defined = set(defined)
                else_defined = set(defined)
                visit(op.then_body, then_defined)
                visit(op.else_body, else_defined)
                # names defined on *both* paths are defined afterwards
                defined |= then_defined & else_defined

    for fn in module.functions:
        visit(fn.body, set())


def _uses(op: Op) -> Tuple[Value, ...]:
    if isinstance(op, Move):
        return (op.src,)
    if isinstance(op, BinOp):
        return (op.a, op.b)
    if isinstance(op, Load):
        return (op.addr,)
    if isinstance(op, Store):
        return (op.addr, op.src)
    if isinstance(op, StoreGlobal):
        return (op.src,)
    if isinstance(op, Loop):
        return (op.count,)
    if isinstance(op, If):
        return (op.a, op.b)
    return ()


def collect_locals(ops: Sequence[Op], acc: Optional[List[str]] = None,
                   seen: Optional[set] = None) -> List[str]:
    """All local names in definition order (for register allocation)."""
    if acc is None:
        acc, seen = [], set()
    for op in ops:
        names = []
        if isinstance(op, (Const, Move, BinOp, Load, LoadGlobal)):
            names.append(op.dst)
        for value in _uses(op):
            if isinstance(value, str):
                names.append(value)
        for name in names:
            if name not in seen:
                seen.add(name)
                acc.append(name)
        if isinstance(op, Loop):
            collect_locals(op.body, acc, seen)
        elif isinstance(op, If):
            collect_locals(op.then_body, acc, seen)
            collect_locals(op.else_body, acc, seen)
    return acc
