"""The Wasm runtime: instance lifecycle over one shared address space.

Mirrors the Wasmtime/Lucet structure the paper modifies (§5.1):

* ``instantiate`` reserves linear memory per the isolation strategy
  (8 GiB guard scheme vs exact-size HFI), compiles the module, stages
  HFI descriptors, and copies the data segment in.
* ``memory_grow`` is the §6.1 experiment's hot path: mprotect for
  guard pages, a single region-register update for HFI.
* ``teardown`` / ``teardown_batch`` reproduce §6.3.1: per-instance
  madvise vs one batched madvise, with or without guard pages in the
  discarded span.

All instances share one address space — the single-process,
many-sandboxes deployment model FaaS platforms want (§2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cpu.machine import Cpu, RunResult
from ..os.address_space import AddressSpace, Prot
from ..os.kernel import Kernel
from ..params import DEFAULT_PARAMS, MachineParams
from .compiler import CompiledModule, Compiler
from .ir import Module
from .strategies import (
    WASM_PAGE,
    IsolationStrategy,
    SandboxLayout,
)

_STACK_BYTES = 1 << 16
_SPILL_BYTES = 1 << 14
_GLOBAL_BYTES = 1 << 13
_DESC_BYTES = 1 << 12
_SUPPORT_BYTES = _STACK_BYTES + _SPILL_BYTES + _GLOBAL_BYTES + _DESC_BYTES
_DEFAULT_CODE_BUDGET = 1 << 21   # 2 MiB per instance


@dataclass
class WasmInstance:
    """One live sandbox: compiled code + linear memory + support area.

    ``module``/``compiled``/``layout`` are None for *memory-only*
    instances created by :meth:`WasmRuntime.reserve_instance`, which
    the lifecycle experiments (§6.3) use to scale to thousands of
    sandboxes without compiling code for each."""

    strategy: IsolationStrategy
    heap_base: int
    heap_bytes: int
    module: Optional[Module] = None
    compiled: Optional[CompiledModule] = None
    layout: Optional[SandboxLayout] = None
    creation_cycles: int = 0
    lifecycle_cycles: int = 0
    alive: bool = True

    @property
    def memory_pages(self) -> int:
        return self.heap_bytes // WASM_PAGE


class WasmRuntime:
    """Manages instances in a single process / address space."""

    def __init__(self, params: MachineParams = DEFAULT_PARAMS,
                 space: Optional[AddressSpace] = None,
                 kernel: Optional[Kernel] = None,
                 code_budget: int = _DEFAULT_CODE_BUDGET,
                 engine: Optional[str] = None,
                 timing: Optional[str] = None):
        self.params = params
        self.space = space if space is not None else AddressSpace(params)
        self.kernel = kernel
        self.code_budget = code_budget
        # ``engine=None``/``timing=None`` defer to the process-wide
        # defaults, so CLI ``--engine``/``--timing`` flags (threaded
        # through ``default_engine``/``default_timing``) reach runtimes
        # constructed deep inside workloads.
        self.cpu = Cpu(params, memory=self.space, engine=engine,
                       timing=timing)
        self.instances: List[WasmInstance] = []

    # ------------------------------------------------------------------
    def _aligned_mmap(self, size: int, prot: Prot, name: str) -> int:
        """Reserve ``size`` bytes aligned to the next power of two, so
        prefix-matched implicit regions can cover the area exactly."""
        align = 1 << max(12, (size - 1).bit_length())
        base = self.space.mmap(size + align, Prot.NONE, name=name)
        aligned = (base + align - 1) & ~(align - 1)
        if prot != Prot.NONE:
            self.space.mprotect(aligned, size, prot)
        return aligned

    def instantiate(self, module: Module, strategy: IsolationStrategy,
                    reserve_extra_regs: int = 0) -> WasmInstance:
        """Create a sandbox for ``module`` under ``strategy``."""
        heap_bytes = module.memory_bytes
        heap_base, create_cost = strategy.reserve_memory(
            self.space, heap_bytes, name=f"{module.name}-heap")
        create_cost += 2 * self.params.syscall_cycles  # mmap + mprotect

        # extra linear memories (multi-memory proposal)
        extra_memories = []
        for i, pages in enumerate(module.extra_memories):
            mem_base, mem_cost = strategy.reserve_memory(
                self.space, pages * WASM_PAGE,
                name=f"{module.name}-memory{i + 1}")
            create_cost += mem_cost + 2 * self.params.syscall_cycles
            extra_memories.append((mem_base, pages * WASM_PAGE))

        support = self._aligned_mmap(_SUPPORT_BYTES, Prot.rw(),
                                     name=f"{module.name}-support")
        code_base = self._aligned_mmap(self.code_budget, Prot.rx(),
                                       name=f"{module.name}-code")
        descriptor_base = (support + _STACK_BYTES + _SPILL_BYTES
                           + _GLOBAL_BYTES)
        layout = SandboxLayout(
            code_base=code_base,
            code_bytes=self.code_budget,
            heap_base=heap_base,
            heap_bytes=heap_bytes,
            support_base=support,
            support_bytes=_SUPPORT_BYTES,
            stack_top=support + _STACK_BYTES - 64,
            spill_base=support + _STACK_BYTES,
            globals_base=support + _STACK_BYTES + _SPILL_BYTES,
            descriptor_base=descriptor_base,
            extra_memories=extra_memories,
            memory_table_base=descriptor_base + 512,
        )
        # instance-struct memory table: (base, bound, mask) per extra
        # memory — what non-HFI codegen consults on every access
        for i, (mem_base, mem_bytes) in enumerate(extra_memories):
            slot = layout.memory_table_base + i * 24
            self.space.write(slot, mem_base, 8, check=False)
            self.space.write(slot + 8, mem_bytes, 8, check=False)
            self.space.write(slot + 16, mem_bytes - 1, 8, check=False)
        compiler = Compiler(strategy, self.params,
                            reserve_extra_regs=reserve_extra_regs)
        compiled = compiler.compile(module, layout)
        self.cpu.load_program(compiled.program)
        strategy.prepare(self.space, layout, self.params)
        if module.data:
            self.space.write_bytes(heap_base, module.data, check=False)
        instance = WasmInstance(module=module, compiled=compiled,
                                strategy=strategy, heap_base=heap_base,
                                heap_bytes=heap_bytes, layout=layout,
                                creation_cycles=create_cost)
        self.instances.append(instance)
        return instance

    # ------------------------------------------------------------------
    def reserve_instance(self, strategy: IsolationStrategy,
                         heap_bytes: int,
                         touch_pages: int = 0) -> WasmInstance:
        """A memory-only instance: reserve linear memory (per strategy)
        and optionally dirty ``touch_pages`` pages, as a short-lived
        FaaS invocation would.  Used by the §6.3 lifecycle experiments
        where per-instance compilation is irrelevant."""
        heap_base, cost = strategy.reserve_memory(self.space, heap_bytes)
        cost += 2 * self.params.syscall_cycles
        page = self.params.page_bytes
        for i in range(touch_pages):
            self.space.write(heap_base + i * page, i + 1, 8, check=False)
        instance = WasmInstance(strategy=strategy, heap_base=heap_base,
                                heap_bytes=heap_bytes,
                                creation_cycles=cost)
        self.instances.append(instance)
        return instance

    # ------------------------------------------------------------------
    def run(self, instance: WasmInstance,
            max_instructions: int = 20_000_000) -> RunResult:
        """Invoke the instance's entry function on the runtime's CPU."""
        if not instance.alive:
            raise RuntimeError("instance was torn down")
        return self.cpu.run(instance.compiled.entry, max_instructions)

    # ------------------------------------------------------------------
    def memory_grow(self, instance: WasmInstance, pages: int) -> int:
        """Grow linear memory by ``pages`` Wasm pages; returns cycles.

        Includes the runtime's own bookkeeping plus the strategy's
        mechanism (mprotect vs hfi_set_region) — the §6.1 comparison.
        """
        old = instance.heap_bytes
        new = old + pages * WASM_PAGE
        cost = self.params.memory_grow_bookkeeping_cycles
        cost += instance.strategy.grow_cost(self.space, instance.heap_base,
                                            old, new, self.params)
        instance.heap_bytes = new
        instance.layout.heap_bytes = new
        instance.strategy.prepare(self.space, instance.layout, self.params)
        instance.lifecycle_cycles += cost
        return cost

    # ------------------------------------------------------------------
    def teardown(self, instance: WasmInstance) -> int:
        """Discard one instance's memory (stock Wasmtime path)."""
        cost = instance.strategy.teardown_cost(
            self.space, instance.heap_base, instance.heap_bytes,
            self.params)
        instance.alive = False
        instance.lifecycle_cycles += cost
        return cost

    def teardown_batch(self, instances: List[WasmInstance]) -> int:
        """One madvise spanning every instance's memory (§5.1's
        HFI-enabled optimization).  When the strategy reserves guard
        regions the span necessarily includes them, which is what makes
        batching a loss without HFI (§6.3.1)."""
        if not instances:
            return 0
        begin = min(i.heap_base for i in instances)
        end = max(i.heap_base + i.heap_bytes + i.strategy.guard_bytes
                  for i in instances)
        cost = (self.params.syscall_cycles
                + self.space.madvise_dontneed(begin, end - begin))
        for instance in instances:
            instance.alive = False
        return cost
