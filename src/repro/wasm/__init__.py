"""Wasm-like SFI toolchain: IR, compiler, isolation strategies, runtime."""

from . import ir
from .compiler import CompiledModule, CompileError, Compiler, TRAP_MAGIC
from .runtime import WasmInstance, WasmRuntime
from .strategies import (
    GUARD_SCHEME_GUARD,
    GUARD_SCHEME_SPACE,
    STRATEGIES,
    WASM_PAGE,
    BoundsCheckStrategy,
    CodegenContext,
    CompatibilityError,
    GuardPagesStrategy,
    HfiEmulationStrategy,
    HfiStrategy,
    IsolationStrategy,
    MaskingStrategy,
    NativeHfiStrategy,
    NativeUnsafeStrategy,
    SandboxLayout,
    SwivelStrategy,
    make_strategy,
)

__all__ = [
    "ir", "Compiler", "CompiledModule", "CompileError", "TRAP_MAGIC",
    "WasmInstance", "WasmRuntime", "IsolationStrategy",
    "GuardPagesStrategy", "BoundsCheckStrategy", "MaskingStrategy",
    "HfiStrategy", "HfiEmulationStrategy", "SwivelStrategy",
    "NativeUnsafeStrategy", "NativeHfiStrategy", "CodegenContext",
    "CompatibilityError",
    "SandboxLayout", "STRATEGIES", "make_strategy", "WASM_PAGE",
    "GUARD_SCHEME_SPACE", "GUARD_SCHEME_GUARD",
]
