"""Random wir program generation for differential testing.

Generates well-formed modules whose memory accesses are always
in-bounds (masked), so every isolation strategy must compute the same
answer as the reference interpreter — the strongest equivalence
statement we can make about the compiler and the strategy backends.
"""

from __future__ import annotations

import random
from typing import List

from . import ir

_BINOPS = [ir.BinaryOp.ADD, ir.BinaryOp.SUB, ir.BinaryOp.MUL,
           ir.BinaryOp.AND, ir.BinaryOp.OR, ir.BinaryOp.XOR,
           ir.BinaryOp.SHL, ir.BinaryOp.SHR]
_CMPS = list(ir.Cmp)

MASK32 = 0xFFFF_FFFF


class ProgramGenerator:
    """Seeded generator of deterministic random modules."""

    def __init__(self, seed: int, *, max_locals: int = 12,
                 max_depth: int = 3, ops_per_block: int = 8,
                 memory_pages: int = 2):
        self.rng = random.Random(seed)
        self.max_locals = max_locals
        self.max_depth = max_depth
        self.ops_per_block = ops_per_block
        self.memory_pages = memory_pages
        self.heap_mask = memory_pages * 65536 - 16  # keep 8B in bounds
        self._locals: List[str] = []

    # ------------------------------------------------------------------
    def module(self, name: str = "fuzz") -> ir.Module:
        self._locals = [f"v{i}"
                        for i in range(self.rng.randint(3,
                                                        self.max_locals))]
        body: List[ir.Op] = [ir.Const(v, self.rng.randrange(1 << 32))
                             for v in self._locals]
        body += self._block(self.max_depth)
        # fold every local into the observable result
        body.append(ir.Const("fz_acc", 0))
        for v in self._locals:
            body.append(ir.BinOp(ir.BinaryOp.XOR, "fz_acc", "fz_acc", v))
        body.append(ir.StoreGlobal("result", "fz_acc"))
        module = ir.Module(name, [ir.Function("main", body)],
                           globals=["result"],
                           memory_pages=self.memory_pages)
        ir.validate(module)
        return module

    # ------------------------------------------------------------------
    def _var(self) -> str:
        return self.rng.choice(self._locals)

    def _value(self) -> ir.Value:
        if self.rng.random() < 0.4:
            return self.rng.randrange(1 << 16)
        return self._var()

    def _masked_addr(self, ops: List[ir.Op]) -> str:
        """Emit ops computing an always-in-bounds address local."""
        ops.append(ir.BinOp(ir.BinaryOp.AND, "fz_addr", self._var(),
                            self.heap_mask & ~7))
        return "fz_addr"

    def _block(self, depth: int) -> List[ir.Op]:
        ops: List[ir.Op] = []
        for _ in range(self.rng.randint(2, self.ops_per_block)):
            ops += self._statement(depth)
        return ops

    def _statement(self, depth: int) -> List[ir.Op]:
        roll = self.rng.random()
        if roll < 0.45:
            return [ir.BinOp(self.rng.choice(_BINOPS), self._var(),
                             self._value(), self._value())]
        if roll < 0.6:
            ops: List[ir.Op] = []
            addr = self._masked_addr(ops)
            if self.rng.random() < 0.5:
                ops.append(ir.Store(addr, self._value(),
                                    offset=self.rng.randrange(8)))
            else:
                ops.append(ir.Load(self._var(), addr,
                                   offset=self.rng.randrange(8)))
            return ops
        if roll < 0.75 and depth > 0:
            return [ir.Loop(self.rng.randint(0, 6),
                            self._block(depth - 1))]
        if roll < 0.9 and depth > 0:
            return [ir.If(self._var(), self.rng.choice(_CMPS),
                          self._value(),
                          self._block(depth - 1),
                          self._block(depth - 1)
                          if self.rng.random() < 0.5 else [])]
        if roll < 0.95:
            return [ir.Move(self._var(), self._value())]
        return [ir.Const(self._var(), self.rng.randrange(1 << 32))]


def generate(seed: int, **kwargs) -> ir.Module:
    """One-shot module generation."""
    return ProgramGenerator(seed, **kwargs).module(name=f"fuzz{seed}")
