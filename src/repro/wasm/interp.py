"""A reference interpreter for wir — the compiler's golden model.

Evaluates a :class:`~repro.wasm.ir.Module` directly in Python with the
same 64-bit wrapping semantics the ISA implements.  The differential
test suite compares this interpreter against the compiled module under
every isolation strategy: any divergence is a compiler or strategy
bug (or a real isolation difference, which must raise instead).

Linear memories are byte-addressed bytearrays; out-of-bounds accesses
raise :class:`InterpTrap`, mirroring precise-trap strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.registers import MASK64, to_signed
from . import ir

_LOOP_CAP = 50_000_000


class InterpTrap(Exception):
    """An out-of-bounds linear-memory access."""


@dataclass
class InterpResult:
    globals: Dict[str, int]
    memories: List[bytearray]
    ops_executed: int = 0

    def global_value(self, name: str) -> int:
        return self.globals[name]


class Interpreter:
    """Evaluates modules; one instance per run."""

    def __init__(self, module: ir.Module):
        ir.validate(module)
        self.module = module
        self.memories: List[bytearray] = [
            bytearray(module.memory_bytes)]
        for pages in module.extra_memories:
            self.memories.append(bytearray(pages * 65536))
        if module.data:
            self.memories[0][:len(module.data)] = module.data
        self.globals: Dict[str, int] = {g: 0 for g in module.globals}
        self.ops = 0

    # ------------------------------------------------------------------
    def run(self, entry: str = None) -> InterpResult:
        fn = (self.module.function(entry) if entry
              else self.module.functions[0])
        self._call(fn)
        return InterpResult(globals=dict(self.globals),
                            memories=self.memories,
                            ops_executed=self.ops)

    def _call(self, fn: ir.Function) -> None:
        locals_: Dict[str, int] = {}
        try:
            self._block(fn.body, locals_)
        except Interpreter._Return:
            pass

    class _Return(Exception):
        pass

    def _block(self, ops, locals_) -> None:
        for op in ops:
            self._op(op, locals_)

    def _value(self, value: ir.Value, locals_) -> int:
        if isinstance(value, int):
            return value & MASK64
        return locals_[value]

    # ------------------------------------------------------------------
    def _op(self, op: ir.Op, locals_) -> None:
        self.ops += 1
        if isinstance(op, ir.Const):
            locals_[op.dst] = op.value & MASK64
            return
        if isinstance(op, ir.Move):
            locals_[op.dst] = self._value(op.src, locals_)
            return
        if isinstance(op, ir.BinOp):
            locals_[op.dst] = self._binop(op, locals_)
            return
        if isinstance(op, ir.Load):
            addr = (self._value(op.addr, locals_) + op.offset) & MASK64
            locals_[op.dst] = self._load(op.memory, addr, op.size)
            return
        if isinstance(op, ir.Store):
            addr = (self._value(op.addr, locals_) + op.offset) & MASK64
            self._store(op.memory, addr, self._value(op.src, locals_),
                        op.size)
            return
        if isinstance(op, ir.LoadGlobal):
            locals_[op.dst] = self.globals[op.name]
            return
        if isinstance(op, ir.StoreGlobal):
            self.globals[op.name] = self._value(op.src, locals_)
            return
        if isinstance(op, ir.Loop):
            count = to_signed(self._value(op.count, locals_))
            if count > _LOOP_CAP:
                raise InterpTrap(f"loop count {count} over cap")
            for _ in range(max(0, count)):
                self._block(op.body, locals_)
            return
        if isinstance(op, ir.If):
            if self._compare(op, locals_):
                self._block(op.then_body, locals_)
            else:
                self._block(op.else_body, locals_)
            return
        if isinstance(op, ir.Call):
            self._call(self.module.function(op.func))
            return
        if isinstance(op, ir.HostCall):
            return  # no semantic effect; purely a transition point
        if isinstance(op, ir.Return):
            raise Interpreter._Return()
        raise NotImplementedError(f"cannot interpret {op!r}")

    def _binop(self, op: ir.BinOp, locals_) -> int:
        a = self._value(op.a, locals_)
        b = self._value(op.b, locals_)
        kind = op.op
        if kind is ir.BinaryOp.ADD:
            return (a + b) & MASK64
        if kind is ir.BinaryOp.SUB:
            return (a - b) & MASK64
        if kind is ir.BinaryOp.MUL:
            return (to_signed(a) * to_signed(b)) & MASK64
        if kind is ir.BinaryOp.DIV:
            if to_signed(b) == 0:
                raise InterpTrap("division by zero")
            return int(to_signed(a) / to_signed(b)) & MASK64
        if kind is ir.BinaryOp.MOD:
            sb = to_signed(b)
            if sb == 0:
                raise InterpTrap("division by zero")
            sa = to_signed(a)
            return (sa - int(sa / sb) * sb) & MASK64
        if kind is ir.BinaryOp.AND:
            return a & b
        if kind is ir.BinaryOp.OR:
            return a | b
        if kind is ir.BinaryOp.XOR:
            return a ^ b
        if kind is ir.BinaryOp.SHL:
            return (a << (b & 63)) & MASK64
        if kind is ir.BinaryOp.SHR:
            return a >> (b & 63)
        raise NotImplementedError(kind)

    def _compare(self, op: ir.If, locals_) -> bool:
        a = self._value(op.a, locals_)
        b = self._value(op.b, locals_)
        kind = op.cmp
        if kind is ir.Cmp.EQ:
            return a == b
        if kind is ir.Cmp.NE:
            return a != b
        if kind is ir.Cmp.LTU:
            return a < b
        if kind is ir.Cmp.GEU:
            return a >= b
        sa, sb = to_signed(a), to_signed(b)
        if kind is ir.Cmp.LT:
            return sa < sb
        if kind is ir.Cmp.LE:
            return sa <= sb
        if kind is ir.Cmp.GT:
            return sa > sb
        if kind is ir.Cmp.GE:
            return sa >= sb
        raise NotImplementedError(kind)

    # ------------------------------------------------------------------
    def _load(self, memory: int, addr: int, size: int) -> int:
        buf = self._memory(memory, addr, size)
        return int.from_bytes(buf[addr:addr + size], "little")

    def _store(self, memory: int, addr: int, value: int,
               size: int) -> None:
        buf = self._memory(memory, addr, size)
        buf[addr:addr + size] = (value & ((1 << (8 * size)) - 1)
                                 ).to_bytes(size, "little")

    def _memory(self, memory: int, addr: int, size: int) -> bytearray:
        buf = self.memories[memory]
        if addr + size > len(buf):
            raise InterpTrap(
                f"access at {addr:#x}+{size} beyond memory {memory} "
                f"({len(buf):#x} bytes)")
        return buf


def interpret(module: ir.Module) -> InterpResult:
    """Convenience one-shot evaluation."""
    return Interpreter(module).run()
