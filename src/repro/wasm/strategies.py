"""Isolation strategies — the pluggable enforcement backends.

Each strategy answers the three questions a Wasm toolchain must answer
(paper §2, §5.1):

1. **Codegen**: what instructions guard each linear-memory access?
2. **Transitions**: what happens on sandbox entry/exit and host calls?
3. **Lifecycle**: how is memory reserved, grown, and torn down?

Implemented strategies:

========================  =====================================================
``GuardPagesStrategy``    stock Wasm: 8 GiB reservation, accesses fold the
                          heap base register, growth via mprotect
``BoundsCheckStrategy``   cmp+branch before every access (the 2x-slowdown
                          technique of Wahbe et al.)
``MaskingStrategy``       classic SFI address masking (no precise traps)
``HfiStrategy``           hybrid HFI sandbox: hmov through an explicit
                          region, growth via hfi_set_region, no guards
``HfiEmulationStrategy``  the paper's §5.2 software emulation: absolute-
                          base mov + cpuid-serialized transitions
``SwivelStrategy``        guard pages + Swivel-SFI-style linear-block
                          hardening (the Spectre baseline of Table 1)
``NativeUnsafeStrategy``  no isolation (Lucet-unsafe baseline)
``NativeHfiStrategy``     HFI *native* sandbox: zero instrumentation,
                          implicit regions + serialized transitions
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.encoding import encode_region, encode_sandbox
from ..core.regions import (
    ExplicitDataRegion,
    ImplicitCodeRegion,
    ImplicitDataRegion,
)
from ..core.registers import SandboxFlags
from ..isa import Assembler, Imm, Mem, Reg
from ..os.address_space import AddressSpace, Prot
from ..params import MachineParams

#: Wasm page size (64 KiB) — heap growth granularity (§3 compatibility).
WASM_PAGE = 65536

#: The guard-page scheme's reservation: 4 GiB space + 4 GiB guard (§2).
GUARD_SCHEME_SPACE = 4 << 30
GUARD_SCHEME_GUARD = 4 << 30


@dataclass
class SandboxLayout:
    """Where a compiled instance's pieces live in the address space."""

    code_base: int
    code_bytes: int
    heap_base: int
    heap_bytes: int
    support_base: int      # stack + spill slots + globals
    support_bytes: int
    stack_top: int
    globals_base: int
    spill_base: int
    descriptor_base: int   # HFI descriptors staged here
    #: Extra linear memories (multi-memory proposal): (base, bytes).
    extra_memories: List[Tuple[int, int]] = None
    #: Instance-struct table of (base, bound) words for extra memories,
    #: consulted by non-HFI codegen on every extra-memory access.
    memory_table_base: int = 0

    def __post_init__(self):
        if self.extra_memories is None:
            self.extra_memories = []


class CompatibilityError(Exception):
    """The isolation scheme cannot support the requested memory shape
    (e.g. Memory64 heaps under the guard-page scheme, §2)."""


@dataclass
class CodegenContext:
    """Everything emit hooks may rely on."""

    layout: SandboxLayout
    trap_label: str
    #: Address scratch register available to strategies.
    scratch: Reg = Reg.R10


class IsolationStrategy:
    """Base behaviour: heap-base folding, no checks (native, unsafe).

    wir ``Load``/``Store`` addresses are *linear-memory offsets*, so
    every strategy must translate them to virtual addresses.  All
    register-based strategies (including the native baselines) fold a
    pinned heap-base register, exactly like Wasm compilers do; only the
    HFI strategies are base-register-free, which is the source of the
    register-pressure benefit §6.1 measures.
    """

    name = "native-unsafe"
    #: Registers the strategy pins (unavailable to the allocator).
    reserved_regs: Tuple[Reg, ...] = (Reg.R14,)
    #: Reserve a guard region after the heap (the mmap footprint).
    guard_bytes: int = 0
    #: Whether memory growth requires an mprotect syscall.
    grows_with_mprotect: bool = False
    #: Spectre-safe? (For reporting; Table 1 compares these.)
    spectre_safe: bool = False

    HEAP_REG = Reg.R14

    # --- codegen -------------------------------------------------------
    def emit_load(self, asm: Assembler, ctx: CodegenContext, dst: Reg,
                  addr: Reg, offset: int, size: int,
                  memory: int = 0) -> None:
        if memory:
            base = self._extra_memory_base(asm, ctx, memory)
            asm.mov(dst, Mem(base=base, index=addr, scale=1,
                             disp=offset, size=size))
            return
        asm.mov(dst, Mem(base=self.HEAP_REG, index=addr, scale=1,
                         disp=offset, size=size))

    def emit_store(self, asm: Assembler, ctx: CodegenContext, addr: Reg,
                   offset: int, src: Reg, size: int,
                   memory: int = 0) -> None:
        if memory:
            base = self._extra_memory_base(asm, ctx, memory)
            asm.mov(Mem(base=base, index=addr, scale=1,
                        disp=offset, size=size), src)
            return
        asm.mov(Mem(base=self.HEAP_REG, index=addr, scale=1,
                    disp=offset, size=size), src)

    def _extra_memory_base(self, asm: Assembler, ctx: CodegenContext,
                           memory: int) -> Reg:
        """Only one base register is pinned, so extra linear memories
        (multi-memory proposal) cost a base load from the instance
        struct on *every* access — the overhead HFI avoids by giving
        each memory its own explicit region (§2, §3.3.1)."""
        asm.mov(ctx.scratch,
                Mem(disp=ctx.layout.memory_table_base
                    + (memory - 1) * 24))
        return ctx.scratch

    def harden_branch(self, asm: Assembler, ctx: CodegenContext) -> None:
        """Called at every conditional-branch join point (Swivel hook)."""

    # --- transitions ----------------------------------------------------
    def emit_entry(self, asm: Assembler, ctx: CodegenContext) -> None:
        """Host-side code that establishes the sandbox before the body."""
        asm.mov(self.HEAP_REG, Imm(ctx.layout.heap_base))

    def emit_exit(self, asm: Assembler, ctx: CodegenContext) -> None:
        """Leave the sandbox at the end of the invocation."""

    def emit_host_transition(self, asm: Assembler, ctx: CodegenContext,
                             host_cycles: int) -> None:
        """A HostCall: leave, run host work, come back."""
        self.emit_exit(asm, ctx)
        for _ in range(max(1, host_cycles)):
            asm.nop()
        self.emit_entry(asm, ctx)

    # --- lifecycle -------------------------------------------------------
    def reserve_memory(self, space: AddressSpace, heap_bytes: int,
                       name: str = "wasm-heap") -> Tuple[int, int]:
        """Reserve the linear memory; returns (heap_base, kernel cycles).

        The default reserves exactly the heap plus ``guard_bytes`` and
        makes the heap accessible.  The base is aligned to the smallest
        power of two covering the heap so implicit prefix regions can
        describe it exactly.
        """
        align = 1 << max(16, (heap_bytes - 1).bit_length())
        total = align + self.guard_bytes
        base = space.mmap(total, Prot.NONE, name=name)
        aligned = (base + align - 1) & ~(align - 1)
        if aligned + heap_bytes > base + total:
            # re-reserve with headroom for alignment
            space.munmap(base, total)
            base = space.mmap(total + align, Prot.NONE, name=name)
            aligned = (base + align - 1) & ~(align - 1)
        cost = space.mprotect(aligned, heap_bytes, Prot.rw())
        return aligned, cost

    def grow_cost(self, space: AddressSpace, heap_base: int,
                  old_bytes: int, new_bytes: int,
                  params: MachineParams) -> int:
        """Cycle cost of growing the accessible heap."""
        if self.grows_with_mprotect:
            return (params.syscall_cycles
                    + space.mprotect(heap_base + old_bytes,
                                     new_bytes - old_bytes, Prot.rw()))
        # software bound update: one store
        return params.base_cycles + params.l1d_hit_cycles

    def teardown_cost(self, space: AddressSpace, heap_base: int,
                      heap_bytes: int, params: MachineParams) -> int:
        """Discard instance memory (madvise MADV_DONTNEED, §5.1)."""
        return (params.syscall_cycles
                + space.madvise_dontneed(heap_base,
                                         heap_bytes + self.guard_bytes))

    # --- memory image ----------------------------------------------------
    def prepare(self, space: AddressSpace, layout: SandboxLayout,
                params: MachineParams) -> None:
        """Stage any descriptors/state the entry sequence expects."""


class NativeUnsafeStrategy(IsolationStrategy):
    """No isolation at all — the Lucet (unsafe) row of Table 1."""

    name = "native-unsafe"


class GuardPagesStrategy(IsolationStrategy):
    """Stock Wasm isolation: implicit MMU bounds via an 8 GiB guard
    reservation; accesses are ``mov dst, [heap_base_reg + addr32]``.
    """

    name = "guard-pages"
    guard_bytes = GUARD_SCHEME_GUARD
    grows_with_mprotect = True

    def reserve_memory(self, space, heap_bytes, name="wasm-heap"):
        # The full 8 GiB scheme: 4 GiB addressable + 4 GiB guard,
        # regardless of how little the instance actually uses (§2).
        if heap_bytes > GUARD_SCHEME_SPACE:
            raise CompatibilityError(
                "the guard-page scheme only supports 32-bit (4 GiB) "
                "address spaces; Memory64 heaps need old-school SFI "
                "checks or HFI's large explicit regions (§2)")
        base = space.mmap(GUARD_SCHEME_SPACE + GUARD_SCHEME_GUARD,
                          Prot.NONE, name=name)
        cost = space.mprotect(base, heap_bytes, Prot.rw())
        return base, cost


class BoundsCheckStrategy(IsolationStrategy):
    """Explicit cmp+branch bounds checks before every access (§2)."""

    name = "bounds-check"
    reserved_regs = (Reg.R14, Reg.R13)         # heap base + heap bound
    spectre_safe = False

    BOUND_REG = Reg.R13

    def emit_load(self, asm, ctx, dst, addr, offset, size, memory=0):
        if memory:
            base = self._check_extra(asm, ctx, addr, offset, size, memory)
            asm.mov(dst, Mem(base=base, index=addr, scale=1,
                             disp=offset, size=size))
            return
        self._check(asm, ctx, addr, offset, size)
        asm.mov(dst, Mem(base=self.HEAP_REG, index=addr, scale=1,
                         disp=offset, size=size))

    def emit_store(self, asm, ctx, addr, offset, src, size, memory=0):
        if memory:
            base = self._check_extra(asm, ctx, addr, offset, size, memory)
            asm.mov(Mem(base=base, index=addr, scale=1,
                        disp=offset, size=size), src)
            return
        self._check(asm, ctx, addr, offset, size)
        asm.mov(Mem(base=self.HEAP_REG, index=addr, scale=1,
                    disp=offset, size=size), src)

    def _check(self, asm, ctx, addr, offset, size):
        # lea scratch, [addr + offset + size]; cmp scratch, bound; ja trap
        asm.lea(ctx.scratch, Mem(base=addr, disp=offset + size))
        asm.cmp(ctx.scratch, self.BOUND_REG)
        asm.ja(ctx.trap_label)

    def _check_extra(self, asm, ctx, addr, offset, size, memory):
        # only one bound register exists: extra memories check against
        # the instance struct (two memory operands per access)
        slot = ctx.layout.memory_table_base + (memory - 1) * 24
        asm.lea(ctx.scratch, Mem(base=addr, disp=offset + size))
        asm.cmp(ctx.scratch, Mem(disp=slot + 8))
        asm.ja(ctx.trap_label)
        asm.mov(ctx.scratch, Mem(disp=slot))
        return ctx.scratch

    def emit_entry(self, asm, ctx):
        super().emit_entry(asm, ctx)
        asm.mov(self.BOUND_REG, Imm(ctx.layout.heap_bytes))


class MaskingStrategy(IsolationStrategy):
    """Classic SFI masking (Wahbe et al.): force addresses in-range.

    Out-of-bounds accesses become wraparound corruption instead of
    traps — the precise-trap incompatibility the paper notes (§2).
    The heap must be power-of-two sized.
    """

    name = "masking"
    reserved_regs = (Reg.R14, Reg.R13)         # heap base + mask
    MASK_REG = Reg.R13

    def emit_load(self, asm, ctx, dst, addr, offset, size, memory=0):
        if memory:
            self._mask_extra(asm, ctx, addr, memory)
            asm.mov(dst, Mem(base=ctx.scratch, disp=offset, size=size))
            return
        asm.mov(ctx.scratch, addr)
        asm.and_(ctx.scratch, self.MASK_REG)
        asm.mov(dst, Mem(base=self.HEAP_REG, index=ctx.scratch, scale=1,
                         disp=offset, size=size))

    def emit_store(self, asm, ctx, addr, offset, src, size, memory=0):
        if memory:
            self._mask_extra(asm, ctx, addr, memory)
            asm.mov(Mem(base=ctx.scratch, disp=offset, size=size), src)
            return
        asm.mov(ctx.scratch, addr)
        asm.and_(ctx.scratch, self.MASK_REG)
        asm.mov(Mem(base=self.HEAP_REG, index=ctx.scratch, scale=1,
                    disp=offset, size=size), src)

    def _mask_extra(self, asm, ctx, addr, memory):
        # scratch = (addr & table.mask) + table.base
        slot = ctx.layout.memory_table_base + (memory - 1) * 24
        asm.mov(ctx.scratch, addr)
        asm.and_(ctx.scratch, Mem(disp=slot + 16))  # the mask word
        asm.add(ctx.scratch, Mem(disp=slot))

    def reserve_memory(self, space, heap_bytes, name="wasm-heap"):
        if heap_bytes & (heap_bytes - 1):
            raise CompatibilityError(
                "address masking requires power-of-two memories "
                f"(got {heap_bytes:#x}) — a non-pow2 mask would let "
                "addresses escape the region")
        return super().reserve_memory(space, heap_bytes, name)

    def emit_entry(self, asm, ctx):
        super().emit_entry(asm, ctx)
        asm.mov(self.MASK_REG, Imm(ctx.layout.heap_bytes - 1))


class HfiStrategy(IsolationStrategy):
    """Hybrid HFI sandbox for Wasm (§5.1's Wasm2c integration).

    The heap is an explicit large region accessed by ``hmov0``; the
    support area (stack, spills, globals) and code are covered by
    implicit regions; growth is a single ``hfi_set_region``; no guard
    pages, no pinned registers.
    """

    name = "hfi"
    reserved_regs = ()
    spectre_safe = True
    HEAP_REGION = 0         # hmov region index (explicit region slot 6)

    def __init__(self, serialized_transitions: bool = True):
        self.serialized_transitions = serialized_transitions

    def emit_load(self, asm, ctx, dst, addr, offset, size, memory=0):
        if memory >= 4:
            raise CompatibilityError(
                "HFI offers four explicit regions; runtimes multiplex "
                "beyond that (§3.3.1) — not modelled")
        asm.hmov(memory, dst,
                 Mem(index=addr, scale=1, disp=offset, size=size))

    def emit_store(self, asm, ctx, addr, offset, src, size, memory=0):
        if memory >= 4:
            raise CompatibilityError(
                "HFI offers four explicit regions; runtimes multiplex "
                "beyond that (§3.3.1) — not modelled")
        asm.hmov(memory,
                 Mem(index=addr, scale=1, disp=offset, size=size), src)

    def emit_entry(self, asm, ctx):
        base = ctx.layout.descriptor_base
        asm.mov(Reg.RDI, Imm(base + 0))
        asm.hfi_set_region(0, Reg.RDI)          # code region
        asm.mov(Reg.RDI, Imm(base + 24))
        asm.hfi_set_region(2, Reg.RDI)          # support implicit data
        asm.mov(Reg.RDI, Imm(base + 48))
        asm.hfi_set_region(6, Reg.RDI)          # heap explicit region
        for i in range(len(ctx.layout.extra_memories)):
            asm.mov(Reg.RDI, Imm(base + 96 + 24 * i))
            asm.hfi_set_region(7 + i, Reg.RDI)  # extra linear memories
        asm.mov(Reg.RDI, Imm(base + 72))
        asm.hfi_enter(Reg.RDI)

    def emit_exit(self, asm, ctx):
        asm.hfi_exit()

    def emit_host_transition(self, asm, ctx, host_cycles):
        asm.hfi_exit()
        for _ in range(max(1, host_cycles)):
            asm.nop()
        asm.hfi_reenter()

    def sandbox_flags(self) -> SandboxFlags:
        return SandboxFlags(is_hybrid=True,
                            is_serialized=self.serialized_transitions)

    def prepare(self, space, layout, params):
        base = layout.descriptor_base
        code = ImplicitCodeRegion.covering(layout.code_base,
                                           layout.code_bytes)
        support = ImplicitDataRegion.covering(layout.support_base,
                                              layout.support_bytes)
        heap = ExplicitDataRegion(layout.heap_base, layout.heap_bytes,
                                  permission_read=True,
                                  permission_write=True,
                                  is_large_region=True)
        space.write_bytes(base + 0, encode_region(code), check=False)
        space.write_bytes(base + 24, encode_region(support), check=False)
        space.write_bytes(base + 48, encode_region(heap), check=False)
        space.write_bytes(base + 72,
                          encode_sandbox(self.sandbox_flags()), check=False)
        for i, (mem_base, mem_bytes) in enumerate(layout.extra_memories):
            region = ExplicitDataRegion(mem_base, mem_bytes,
                                        permission_read=True,
                                        permission_write=True,
                                        is_large_region=True)
            space.write_bytes(base + 96 + 24 * i, encode_region(region),
                              check=False)

    def grow_cost(self, space, heap_base, old_bytes, new_bytes, params):
        # one descriptor store + hfi_set_region (§6.1: "just a register
        # update", ~30x faster than the mprotect path)
        store = 3 * (params.base_cycles + params.l1d_hit_cycles)
        loads = 3 * (params.base_cycles + params.l1d_hit_cycles)
        return store + loads + params.hfi_set_region_cycles


class HfiEmulationStrategy(IsolationStrategy):
    """The paper's compiler-based emulation of HFI (§5.2 appendix A.2).

    * ``hmov`` becomes a normal mov with the heap base folded into the
      displacement (no register consumed — capturing the register-
      pressure benefit).
    * ``hfi_enter``/``hfi_exit`` become ``cpuid`` (a serializing
      instruction) plus the metadata moves a real enter performs.
    """

    name = "hfi-emulation"
    reserved_regs = ()
    spectre_safe = True

    def _base_for(self, ctx, memory):
        if memory == 0:
            return ctx.layout.heap_base
        return ctx.layout.extra_memories[memory - 1][0]

    def emit_load(self, asm, ctx, dst, addr, offset, size, memory=0):
        asm.mov(dst, Mem(index=addr, scale=1,
                         disp=self._base_for(ctx, memory) + offset,
                         size=size))

    def emit_store(self, asm, ctx, addr, offset, src, size, memory=0):
        asm.mov(Mem(index=addr, scale=1,
                    disp=self._base_for(ctx, memory) + offset,
                    size=size), src)

    def emit_entry(self, asm, ctx):
        # emulate hfi_set_region: move region metadata from memory into
        # general-purpose registers (appendix A.2)
        base = ctx.layout.descriptor_base
        for slot in range(3):
            asm.mov(Reg.R10, Mem(disp=base + slot * 24))
            asm.mov(Reg.R10, Mem(disp=base + slot * 24 + 8))
            asm.mov(Reg.R10, Mem(disp=base + slot * 24 + 16))
        asm.cpuid()      # serialize like hfi_enter

    def emit_exit(self, asm, ctx):
        asm.cpuid()      # serialize like hfi_exit

    def prepare(self, space, layout, params):
        # stage plausible descriptor bytes for the emulated metadata moves
        heap = ExplicitDataRegion(layout.heap_base, layout.heap_bytes,
                                  permission_read=True,
                                  permission_write=True)
        for slot in range(3):
            space.write_bytes(layout.descriptor_base + slot * 24,
                              encode_region(heap), check=False)

    def grow_cost(self, space, heap_base, old_bytes, new_bytes, params):
        store = 3 * (params.base_cycles + params.l1d_hit_cycles)
        loads = 3 * (params.base_cycles + params.l1d_hit_cycles)
        return store + loads + params.hfi_set_region_cycles


class SwivelStrategy(GuardPagesStrategy):
    """Guard pages + Swivel-SFI-style Spectre hardening (Table 1).

    Swivel compiles Wasm into *linear blocks* with register interlocks
    so mispredicted paths cannot form disclosure gadgets.  We model the
    per-block cost as two ALU interlock instructions at every
    conditional-branch join point and a fence at transitions — which
    also reproduces Swivel's binary bloat.
    """

    name = "swivel"
    spectre_safe = True

    def harden_branch(self, asm, ctx):
        # register interlock: mask the heap pointer through a predicate
        asm.and_(self.HEAP_REG, self.HEAP_REG)
        asm.or_(self.HEAP_REG, Imm(0))

    def emit_entry(self, asm, ctx):
        super().emit_entry(asm, ctx)
        asm.lfence()

    def emit_exit(self, asm, ctx):
        asm.lfence()


class NativeHfiStrategy(IsolationStrategy):
    """HFI *native* sandbox (§6.4): unmodified code, implicit regions.

    No instrumentation at all — region checks ride the data path in
    parallel with the dtb — so the only costs are the serialized
    transitions and the metadata moves (Fig. 5).
    """

    name = "native-hfi"
    spectre_safe = True

    #: Caller-saved registers a springboard clears so the sandbox never
    #: observes host values (§3.3.1's springboards/trampolines).
    SPRINGBOARD_CLEARS = (Reg.RAX, Reg.RCX, Reg.RDX, Reg.RSI,
                          Reg.R8, Reg.R9, Reg.R10, Reg.R11)

    def __init__(self, serialized_transitions: bool = True,
                 springboard: bool = False):
        self.serialized_transitions = serialized_transitions
        #: Emit real register-clearing springboard code at entry.
        self.springboard = springboard

    def emit_entry(self, asm, ctx):
        super().emit_entry(asm, ctx)
        if self.springboard:
            for reg in self.SPRINGBOARD_CLEARS:
                asm.xor(reg, reg)
        base = ctx.layout.descriptor_base
        asm.mov(Reg.RDI, Imm(base + 0))
        asm.hfi_set_region(0, Reg.RDI)          # code region
        asm.mov(Reg.RDI, Imm(base + 24))
        asm.hfi_set_region(2, Reg.RDI)          # heap implicit region
        asm.mov(Reg.RDI, Imm(base + 48))
        asm.hfi_set_region(3, Reg.RDI)          # support implicit region
        asm.mov(Reg.RDI, Imm(base + 72))
        asm.hfi_enter(Reg.RDI)

    def emit_exit(self, asm, ctx):
        asm.hfi_exit()

    def emit_host_transition(self, asm, ctx, host_cycles):
        asm.hfi_exit()
        for _ in range(max(1, host_cycles)):
            asm.nop()
        asm.hfi_reenter()

    def sandbox_flags(self) -> SandboxFlags:
        return SandboxFlags(is_hybrid=False,
                            is_serialized=self.serialized_transitions)

    def prepare(self, space, layout, params):
        base = layout.descriptor_base
        code = ImplicitCodeRegion.covering(layout.code_base,
                                           layout.code_bytes)
        heap = ImplicitDataRegion.covering(layout.heap_base,
                                           layout.heap_bytes)
        support = ImplicitDataRegion.covering(layout.support_base,
                                              layout.support_bytes)
        space.write_bytes(base + 0, encode_region(code), check=False)
        space.write_bytes(base + 24, encode_region(heap), check=False)
        space.write_bytes(base + 48, encode_region(support), check=False)
        space.write_bytes(base + 72,
                          encode_sandbox(self.sandbox_flags()), check=False)


#: Registry for CLI/bench parameterization.
STRATEGIES = {
    "native-unsafe": NativeUnsafeStrategy,
    "guard-pages": GuardPagesStrategy,
    "bounds-check": BoundsCheckStrategy,
    "masking": MaskingStrategy,
    "hfi": HfiStrategy,
    "hfi-emulation": HfiEmulationStrategy,
    "swivel": SwivelStrategy,
    "native-hfi": NativeHfiStrategy,
}


def make_strategy(name: str, **kwargs) -> IsolationStrategy:
    """Instantiate a strategy by registry name."""
    try:
        return STRATEGIES[name](**kwargs)
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"known: {sorted(STRATEGIES)}") from None
