"""The wir -> ISA compiler with pluggable isolation (the Wasm2c analogue).

Lowering model:

* Locals are register-allocated first-come-first-served from the pool
  the isolation strategy leaves available; the rest live in static
  spill slots in the instance's support area.  Strategies that pin
  registers (guard pages: heap base; bounds checks: base + bound)
  shrink the pool — the register-pressure effect §6.1 measures.
* Every linear-memory access is delegated to the strategy, which is
  where guard-page folding, cmp+branch checks, masking, ``hmov``, or
  nothing (native) get emitted.
* Sandbox entry/exit and host-call transitions are also strategy-owned.

The compiler is deliberately simple (no recursion support: spill slots
are static) but deterministic, so cycle comparisons across strategies
are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..isa import Assembler, Imm, Mem, Opcode, Program, Reg
from ..params import DEFAULT_PARAMS, MachineParams
from . import ir
from .strategies import CodegenContext, IsolationStrategy, SandboxLayout

#: Magic value left in RAX by the trap handler (bounds-check failures).
TRAP_MAGIC = 0xDEAD_0BAD

#: Scratch registers owned by the compiler (never allocated to locals).
_SCRATCH_A = Reg.RAX   # primary value scratch / op results
_SCRATCH_B = Reg.RDX   # secondary operand scratch
_SCRATCH_ADDR = Reg.R11  # address materialization
_SCRATCH_STRAT = Reg.R10  # handed to strategies (masking, bounds lea)
_DESCRIPTOR_PTR = Reg.RDI  # used by HFI entry sequences

_POOL_ORDER = [Reg.RBX, Reg.RCX, Reg.RSI, Reg.RBP, Reg.R8, Reg.R9,
               Reg.R12, Reg.R13, Reg.R14, Reg.R15]


class CompileError(Exception):
    """The module can't be lowered (e.g. unsupported op)."""


@dataclass
class CompiledModule:
    """Output of :meth:`Compiler.compile`."""

    module: ir.Module
    program: Program
    entry: int                    # address the host jumps to
    layout: SandboxLayout
    strategy: IsolationStrategy
    spilled_locals: int = 0
    register_locals: int = 0

    @property
    def binary_size(self) -> int:
        """Encoded byte size — Table 1's 'Bin size' column."""
        return self.program.size

    def disassemble(self, **kwargs) -> str:
        """A labelled listing of the emitted code (hmov marked ``*``)."""
        from ..isa.disasm import disassemble
        return disassemble(self.program, **kwargs)


@dataclass
class _FuncState:
    regs: Dict[str, Reg] = field(default_factory=dict)
    spills: Dict[str, int] = field(default_factory=dict)   # var -> addr


class Compiler:
    """Compiles a :class:`~repro.wasm.ir.Module` for one layout."""

    def __init__(self, strategy: IsolationStrategy,
                 params: MachineParams = DEFAULT_PARAMS,
                 reserve_extra_regs: int = 0):
        self.strategy = strategy
        self.params = params
        #: Artificially shrink the pool (the §6.1 register-pressure
        #: experiment reserves 1 then 2 extra registers).
        self.reserve_extra_regs = reserve_extra_regs

    # ------------------------------------------------------------------
    def compile(self, module: ir.Module,
                layout: SandboxLayout) -> CompiledModule:
        ir.validate(module)
        self._in_use = set()
        asm = Assembler(base=layout.code_base)
        ctx = CodegenContext(layout=layout, trap_label="__trap",
                             scratch=_SCRATCH_STRAT)
        self._label_counter = 0
        self._spill_cursor = layout.spill_base
        self._globals = {name: layout.globals_base + i * 8
                         for i, name in enumerate(module.globals)}
        spilled = registered = 0

        # host-side entry: establish stack, enter sandbox, call main
        asm.label("__entry")
        asm.mov(Reg.RSP, Imm(layout.stack_top))
        self.strategy.emit_entry(asm, ctx)
        main = module.functions[0].name
        asm.call(f"__fn_{main}")
        self.strategy.emit_exit(asm, ctx)
        asm.hlt()
        asm.label(ctx.trap_label)
        asm.mov(_SCRATCH_A, Imm(TRAP_MAGIC))
        asm.hlt()

        for fn in module.functions:
            state = self._allocate(fn)
            spilled += len(state.spills)
            registered += len(state.regs)
            asm.label(f"__fn_{fn.name}")
            # callee-saved convention: a function preserves every pool
            # register it uses, so calls can't clobber caller state
            used = sorted({r for r in state.regs.values()},
                          key=lambda r: r.value)
            for reg in used:
                asm.push(reg)
            self._epilogue_label = f"__fnend_{fn.name}"
            self._lower_block(asm, ctx, state, fn.body)
            asm.label(self._epilogue_label)
            for reg in reversed(used):
                asm.pop(reg)
            asm.ret()

        program = asm.assemble()
        program.finalize()
        entry = program.labels["__entry"]
        compiled = CompiledModule(module=module, program=program,
                                  entry=entry, layout=layout,
                                  strategy=self.strategy,
                                  spilled_locals=spilled,
                                  register_locals=registered)
        if program.size > layout.code_bytes:
            raise CompileError(
                f"code size {program.size} exceeds layout budget "
                f"{layout.code_bytes}")
        return compiled

    # ------------------------------------------------------------------
    # register allocation
    # ------------------------------------------------------------------
    def _pool(self) -> List[Reg]:
        pool = [r for r in _POOL_ORDER
                if r not in self.strategy.reserved_regs]
        if self.reserve_extra_regs:
            pool = pool[:len(pool) - self.reserve_extra_regs]
        return pool

    def _allocate(self, fn: ir.Function) -> _FuncState:
        names = ir.collect_locals(fn.body)
        names += [f"$loop{i}" for i in range(self._count_loops(fn.body))]
        state = _FuncState()
        pool = self._pool()
        for i, name in enumerate(names):
            if i < len(pool):
                state.regs[name] = pool[i]
            else:
                state.spills[name] = self._spill_cursor
                self._spill_cursor += 8
        return state

    def _count_loops(self, ops) -> int:
        count = 0
        for op in ops:
            if isinstance(op, ir.Loop):
                count += 1 + self._count_loops(op.body)
            elif isinstance(op, ir.If):
                count += self._count_loops(op.then_body)
                count += self._count_loops(op.else_body)
        return count

    # ------------------------------------------------------------------
    # value plumbing
    # ------------------------------------------------------------------
    def _operand(self, asm: Assembler, state: _FuncState,
                 value: ir.Value, scratch: Reg) -> Union[Reg, Imm]:
        """Return a Reg or Imm usable as an instruction source."""
        if isinstance(value, int):
            return Imm(value)
        reg = state.regs.get(value)
        if reg is not None:
            return reg
        asm.mov(scratch, Mem(disp=state.spills[value]))
        return scratch

    def _into_reg(self, asm: Assembler, state: _FuncState,
                  value: ir.Value, scratch: Reg) -> Reg:
        """Materialize a value into a register (scratch if needed)."""
        operand = self._operand(asm, state, value, scratch)
        if isinstance(operand, Imm):
            asm.mov(scratch, operand)
            return scratch
        return operand

    def _write_local(self, asm: Assembler, state: _FuncState,
                     name: str, src: Reg) -> None:
        reg = state.regs.get(name)
        if reg is not None:
            if reg is not src:
                asm.mov(reg, src)
        else:
            asm.mov(Mem(disp=state.spills[name]), src)

    def _local_reg(self, state: _FuncState, name: str) -> Optional[Reg]:
        return state.regs.get(name)

    def _fresh(self, prefix: str) -> str:
        self._label_counter += 1
        return f"__{prefix}{self._label_counter}"

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    _BINOP = {
        ir.BinaryOp.ADD: Opcode.ADD,
        ir.BinaryOp.SUB: Opcode.SUB,
        ir.BinaryOp.MUL: Opcode.IMUL,
        ir.BinaryOp.DIV: Opcode.IDIV,
        ir.BinaryOp.MOD: Opcode.IMOD,
        ir.BinaryOp.AND: Opcode.AND,
        ir.BinaryOp.OR: Opcode.OR,
        ir.BinaryOp.XOR: Opcode.XOR,
        ir.BinaryOp.SHL: Opcode.SHL,
        ir.BinaryOp.SHR: Opcode.SHR,
    }

    #: Inverted conditions: jump to else when the test fails.
    _INV_JUMP = {
        ir.Cmp.EQ: "jne", ir.Cmp.NE: "je",
        ir.Cmp.LT: "jge", ir.Cmp.LE: "jg",
        ir.Cmp.GT: "jle", ir.Cmp.GE: "jl",
        ir.Cmp.LTU: "jae", ir.Cmp.GEU: "jb",
    }

    def _lower_block(self, asm, ctx, state, ops) -> None:
        for op in ops:
            self._lower_op(asm, ctx, state, op)

    def _lower_op(self, asm, ctx, state, op) -> None:
        if isinstance(op, ir.Const):
            dst = self._local_reg(state, op.dst)
            if dst is not None:
                asm.mov(dst, Imm(op.value))
            else:
                asm.mov(_SCRATCH_A, Imm(op.value))
                self._write_local(asm, state, op.dst, _SCRATCH_A)
            return
        if isinstance(op, ir.Move):
            src = self._operand(asm, state, op.src, _SCRATCH_A)
            if isinstance(src, Imm):
                asm.mov(_SCRATCH_A, src)
                src = _SCRATCH_A
            self._write_local(asm, state, op.dst, src)
            return
        if isinstance(op, ir.BinOp):
            self._lower_binop(asm, state, op)
            return
        if isinstance(op, ir.Load):
            addr = self._into_reg(asm, state, op.addr, _SCRATCH_ADDR)
            dst = self._local_reg(state, op.dst)
            target = dst if dst is not None else _SCRATCH_A
            self.strategy.emit_load(asm, ctx, target, addr,
                                    op.offset, op.size, memory=op.memory)
            if dst is None:
                self._write_local(asm, state, op.dst, _SCRATCH_A)
            return
        if isinstance(op, ir.Store):
            src = self._into_reg(asm, state, op.src, _SCRATCH_A)
            addr = self._into_reg(asm, state, op.addr, _SCRATCH_ADDR)
            self.strategy.emit_store(asm, ctx, addr, op.offset, src,
                                     op.size, memory=op.memory)
            return
        if isinstance(op, ir.LoadGlobal):
            dst = self._local_reg(state, op.dst)
            target = dst if dst is not None else _SCRATCH_A
            asm.mov(target, Mem(disp=self._globals[op.name]))
            if dst is None:
                self._write_local(asm, state, op.dst, _SCRATCH_A)
            return
        if isinstance(op, ir.StoreGlobal):
            src = self._into_reg(asm, state, op.src, _SCRATCH_A)
            asm.mov(Mem(disp=self._globals[op.name]), src)
            return
        if isinstance(op, ir.Loop):
            self._lower_loop(asm, ctx, state, op)
            return
        if isinstance(op, ir.If):
            self._lower_if(asm, ctx, state, op)
            return
        if isinstance(op, ir.Call):
            asm.call(f"__fn_{op.func}")
            return
        if isinstance(op, ir.HostCall):
            self.strategy.emit_host_transition(asm, ctx, op.host_cycles)
            return
        if isinstance(op, ir.Return):
            asm.jmp(self._epilogue_label)  # run callee-saved restores
            return
        raise CompileError(f"cannot lower {op!r}")

    def _lower_binop(self, asm, state, op: ir.BinOp) -> None:
        opcode = self._BINOP[op.op]
        dst = self._local_reg(state, op.dst)
        b_operand = self._operand(asm, state, op.b, _SCRATCH_B)
        if dst is not None:
            if op.a == op.dst:
                # accumulator form: op dst, b  (single instruction)
                asm.emit(opcode, dst, b_operand)
                return
            if b_operand is dst:
                # b lives in dst's register; stash it first
                asm.mov(_SCRATCH_B, b_operand)
                b_operand = _SCRATCH_B
            a_operand = self._operand(asm, state, op.a, _SCRATCH_A)
            asm.mov(dst, a_operand)
            asm.emit(opcode, dst, b_operand)
            return
        a_operand = self._operand(asm, state, op.a, _SCRATCH_A)
        if not (isinstance(a_operand, Reg) and a_operand is _SCRATCH_A):
            asm.mov(_SCRATCH_A, a_operand)
        asm.emit(opcode, _SCRATCH_A, b_operand)
        self._write_local(asm, state, op.dst, _SCRATCH_A)

    def _lower_loop(self, asm, ctx, state, op: ir.Loop) -> None:
        ctr = self._loop_counter_name(state)
        top = self._fresh("loop")
        end = self._fresh("endloop")
        count = self._into_reg(asm, state, op.count, _SCRATCH_A)
        self._write_local(asm, state, ctr, count)
        ctr_operand = self._operand(asm, state, ctr, _SCRATCH_B)
        asm.cmp(ctr_operand, Imm(0))
        asm.je(end)
        asm.label(top)
        # Swivel-style hardening applies to every linear block, which
        # includes each loop-body block (its top is a branch target).
        self.strategy.harden_branch(asm, ctx)
        self._lower_block(asm, ctx, state, op.body)
        reg = self._local_reg(state, ctr)
        if reg is not None:
            asm.dec(reg)
        else:
            slot = state.spills[ctr]
            asm.mov(_SCRATCH_B, Mem(disp=slot))
            asm.dec(_SCRATCH_B)
            asm.mov(Mem(disp=slot), _SCRATCH_B)
        asm.jne(top)
        asm.label(end)
        self.strategy.harden_branch(asm, ctx)
        self._release_loop_counter(state, ctr)

    def _loop_counter_name(self, state) -> str:
        """Claim the next unused synthetic loop-counter local."""
        for i in range(len(state.regs) + len(state.spills)):
            name = f"$loop{i}"
            if (name in state.regs or name in state.spills) \
                    and name not in self._in_use:
                self._in_use.add(name)
                return name
        raise CompileError("loop counter allocation failed")

    def _release_loop_counter(self, state, name: str) -> None:
        self._in_use.discard(name)

    def _lower_if(self, asm, ctx, state, op: ir.If) -> None:
        else_label = self._fresh("else")
        end_label = self._fresh("endif")
        a = self._into_reg(asm, state, op.a, _SCRATCH_A)
        b = self._operand(asm, state, op.b, _SCRATCH_B)
        asm.cmp(a, b)
        getattr(asm, self._INV_JUMP[op.cmp])(else_label)
        self._lower_block(asm, ctx, state, op.then_body)
        if op.else_body:
            asm.jmp(end_label)
            asm.label(else_label)
            self._lower_block(asm, ctx, state, op.else_body)
            asm.label(end_label)
        else:
            asm.label(else_label)
        self.strategy.harden_branch(asm, ctx)
