"""Command-line interface: run workloads, attacks, and experiments.

Examples::

    repro-hfi list-workloads
    repro-hfi run sieve --strategy hfi --scale 2
    repro-hfi compare 445.gobmk --strategies guard-pages,bounds-check,hfi
    repro-hfi attack pht --hfi
    repro-hfi nginx
    repro-hfi heap-growth
    repro-hfi chaos --seeds 50

(Installed as the ``repro-hfi`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import format_table, format_telemetry
from .cpu.machine import (ENGINES, TIMING_MODELS, default_engine,
                          default_timing)
from .params import MachineParams
from .wasm import STRATEGIES, WasmRuntime, make_strategy


def _emit(args, payload: dict, text: str) -> None:
    """Print machine-readable JSON with ``--json``, tables otherwise."""
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def _all_workloads():
    from .workloads import FAAS_APPS, SIGHTGLASS_BENCHMARKS, SPEC_BENCHMARKS
    table = {}
    for suite, registry in (("sightglass", SIGHTGLASS_BENCHMARKS),
                            ("spec2006", SPEC_BENCHMARKS),
                            ("faas", FAAS_APPS)):
        for name, builder in registry.items():
            table[name] = (suite, builder)
    return table


def cmd_list_workloads(args) -> int:
    rows = [(name, suite) for name, (suite, _) in
            sorted(_all_workloads().items())]
    print(format_table(["workload", "suite"], rows))
    print(f"\nstrategies: {', '.join(sorted(STRATEGIES))}")
    return 0


def _run_one(name: str, strategy_name: str, scale: int,
             engine: Optional[str] = None,
             timing: Optional[str] = None):
    workloads = _all_workloads()
    if name not in workloads:
        raise SystemExit(f"unknown workload {name!r}; "
                         f"try: repro-hfi list-workloads")
    _, builder = workloads[name]
    module = builder(scale)
    runtime = WasmRuntime(MachineParams(), engine=engine, timing=timing)
    instance = runtime.instantiate(module, make_strategy(strategy_name))
    result = runtime.run(instance)
    value = runtime.space.read(instance.layout.globals_base)
    return result, value, instance


def cmd_run(args) -> int:
    result, value, instance = _run_one(args.workload, args.strategy,
                                       args.scale, engine=args.engine,
                                       timing=args.timing)
    stats = result.stats
    payload = {
        "workload": args.workload, "scale": args.scale,
        "strategy": args.strategy, "engine": args.engine,
        "timing": args.timing,
        "reason": result.reason,
        "result": value, "cycles": stats.cycles,
        "instructions": stats.instructions, "loads": stats.loads,
        "stores": stats.stores, "branches": stats.branches,
        "mispredicts": stats.mispredicts,
        "binary_size": instance.compiled.binary_size,
        "fault": ({"kind": result.fault.kind,
                   "cause": result.fault.hfi_cause.name,
                   "addr": result.fault.addr}
                  if result.fault is not None else None),
    }
    lines = [f"workload:     {args.workload} (scale {args.scale})",
             f"strategy:     {args.strategy}",
             f"engine:       {args.engine}",
             f"timing:       {args.timing}",
             f"stopped:      {result.reason}"]
    if result.fault is not None:
        lines.append(f"fault:        {result.fault.kind} "
                     f"{result.fault.hfi_cause.name} "
                     f"at {result.fault.addr:#x}")
    lines += [f"result:       {value:#x}",
              f"cycles:       {stats.cycles:,}",
              f"instructions: {stats.instructions:,}",
              f"loads/stores: {stats.loads:,}/{stats.stores:,}",
              f"branches:     {stats.branches:,} "
              f"({stats.mispredicts:,} mispredicted)",
              f"binary size:  {instance.compiled.binary_size:,} B"]
    _emit(args, payload, "\n".join(lines))
    return 0 if result.reason == "hlt" else 1


def cmd_compare(args) -> int:
    names = args.strategies.split(",")
    rows = []
    entries = []
    baseline = None
    values = set()
    for strategy_name in names:
        result, value, instance = _run_one(args.workload, strategy_name,
                                           args.scale)
        values.add(value)
        cycles = result.stats.cycles
        if baseline is None:
            baseline = cycles
        entries.append({"strategy": strategy_name, "cycles": cycles,
                        "relative": cycles / baseline,
                        "binary_size": instance.compiled.binary_size})
        rows.append((strategy_name, f"{cycles:,}",
                     f"{100 * cycles / baseline:.1f}%",
                     f"{instance.compiled.binary_size:,}"))
    agreed = len(values) == 1
    payload = {"workload": args.workload, "scale": args.scale,
               "baseline": names[0], "strategies": entries,
               "agreed": agreed}
    text = format_table(
        ["strategy", "cycles", f"vs {names[0]}", "binary B"], rows,
        title=f"{args.workload} (scale {args.scale})")
    if not agreed:
        text += "\nWARNING: strategies disagreed on the result!"
    _emit(args, payload, text)
    return 0 if agreed else 1


def cmd_attack(args) -> int:
    from .attacks import (SpectreBtbAttack, SpectrePhtAttack,
                          SpectreRsbAttack)
    cls = {"pht": SpectrePhtAttack, "btb": SpectreBtbAttack,
           "rsb": SpectreRsbAttack}[args.kind]
    attack = cls(MachineParams(), protect_with_hfi=args.hfi)
    result = attack.attack(secret_value=ord(args.secret))
    shield = "with HFI" if args.hfi else "without HFI"
    print(f"Spectre-{args.kind.upper()} {shield}:")
    if result.leaked:
        print(f"  LEAKED {chr(result.leaked_value)!r} "
              f"(latency {result.hits[result.leaked_value]} cycles, "
              f"threshold {result.threshold})")
        return 1
    print(f"  no leak: min latency {min(result.latencies)} cycles "
          f"> threshold {result.threshold}")
    return 0


def cmd_nginx(args) -> int:
    from .workloads import FILE_SIZES, NginxModel
    model = NginxModel(MachineParams())
    rows = []
    entries = []
    for size in FILE_SIZES:
        entries.append({
            "file_bytes": size,
            "unprotected_rps": model.throughput_rps(size, "unprotected"),
            "hfi_overhead_pct": model.overhead_pct(size, "hfi"),
            "mpk_overhead_pct": model.overhead_pct(size, "mpk")})
        rows.append((f"{size >> 10}kb",
                     f"{model.throughput_rps(size, 'unprotected'):,.0f}",
                     f"{model.overhead_pct(size, 'hfi'):.2f}%",
                     f"{model.overhead_pct(size, 'mpk'):.2f}%"))
    _emit(args, {"experiment": "nginx", "rows": entries}, format_table(
        ["file size", "unprotected rps", "HFI overhead", "MPK overhead"],
        rows, title="NGINX + sandboxed OpenSSL (Fig. 5)"))
    return 0


def cmd_heap_growth(args) -> int:
    from .os import AddressSpace
    from .wasm import WASM_PAGE, GuardPagesStrategy, HfiStrategy
    params = MachineParams()
    rows = []
    for label, strategy in (("mprotect (guard pages)",
                             GuardPagesStrategy()),
                            ("hfi_set_region", HfiStrategy())):
        space = AddressSpace(params)
        base, _ = strategy.reserve_memory(space, WASM_PAGE)
        total, size = 0, WASM_PAGE
        target = args.gib << 30
        while size < target:
            total += params.memory_grow_bookkeeping_cycles
            total += strategy.grow_cost(space, base, size,
                                        size + WASM_PAGE, params)
            size += WASM_PAGE
        rows.append((label, f"{total:,}",
                     f"{params.cycles_to_seconds(total):.3f}"))
    payload = {"experiment": "heap-growth", "gib": args.gib,
               "rows": [{"mechanism": label, "cycles": int(c.replace(",", "")),
                         "seconds": float(s)} for label, c, s in rows]}
    _emit(args, payload,
          format_table(["mechanism", "cycles", "modelled seconds"], rows,
                       title=f"heap growth to {args.gib} GiB (§6.1)"))
    return 0


def cmd_chain(args) -> int:
    from .runtime import ChainModel
    model = ChainModel(MachineParams())
    rows = []
    entries = []
    for mechanism in ("in-process", "in-process-serialized", "ipc"):
        cycles = model.chain_cycles(args.functions, mechanism=mechanism,
                                    payload_bytes=args.payload)
        entries.append({"mechanism": mechanism, "cycles": cycles,
                        "us": MachineParams().cycles_to_us(cycles)})
        rows.append((mechanism, f"{cycles:,}",
                     f"{MachineParams().cycles_to_us(cycles):.2f}"))
    speedup = model.speedup(args.functions, args.payload)
    payload = {"experiment": "chain", "functions": args.functions,
               "payload_bytes": args.payload, "rows": entries,
               "speedup_vs_ipc": speedup}
    text = (format_table(["mechanism", "cycles", "us"], rows,
                         title=(f"{args.functions}-function chain, "
                                f"{args.payload}B payload (§2)"))
            + f"\n\nin-process advantage over IPC: {speedup:,.0f}x")
    _emit(args, payload, text)
    return 0


def cmd_startup(args) -> int:
    from .runtime import StartupModel
    from .wasm import GuardPagesStrategy, HfiStrategy
    model = StartupModel(MachineParams())
    comparison = model.compare(HfiStrategy())
    rows = [(k, f"{v:,.1f}") for k, v in comparison.items()]
    _emit(args,
          {"experiment": "startup",
           "startup_us": {k: v for k, v in comparison.items()}},
          format_table(["mechanism", "startup (us)"], rows,
                       title="context start-up latency (§1)"))
    return 0


def cmd_telemetry(args) -> int:
    """Run a short multi-sandbox demo with a live telemetry sink and
    report per-sandbox attribution, counters, and spans."""
    from .runtime import InstancePool, SandboxManager, TransitionKind
    from .telemetry import Telemetry, write_json
    from .wasm import HfiStrategy

    if args.sandboxes < 1:
        raise SystemExit("--sandboxes must be >= 1")
    if args.invocations < 0:
        raise SystemExit("--invocations must be >= 0")
    telemetry = Telemetry()
    manager = SandboxManager(MachineParams(), telemetry=telemetry)
    handles = []
    for i in range(args.sandboxes):
        handles.append(manager.create_sandbox(
            heap_bytes=1 << 20, hybrid=(i % 2 == 1),
            serialized=(i % 2 == 0)))
    pool = InstancePool(manager.space, HfiStrategy(),
                        slots=max(2, args.sandboxes // 2),
                        heap_bytes=1 << 20, params=manager.params,
                        telemetry=telemetry)
    for n in range(args.invocations):
        handle = handles[n % len(handles)]
        kind = (TransitionKind.ZERO_COST if handle.is_hybrid
                else TransitionKind.SPRINGBOARD)
        # Vary service time per sandbox so the attribution table has
        # visible structure.
        service = 2_000 + 1_000 * (handle.sandbox_id % 3)
        manager.invoke_pooled(handle, pool, service, kind)
    manager.grow_heap(handles[0], 1 << 21)

    attribution = telemetry.attribution()
    total_attributed = sum(attribution.values())
    payload = {
        "sandboxes": args.sandboxes,
        "invocations": args.invocations,
        "total_cycles": manager.total_cycles,
        "attributed_cycles": total_attributed,
        "attribution": {str(k) if k is not None else "runtime": v
                        for k, v in attribution.items()},
        "manager": manager.stats().as_dict(),
        "telemetry": telemetry.snapshot(),
    }
    if args.out:
        write_json(telemetry, args.out)
    _emit(args, payload, format_telemetry(telemetry))
    # The attribution ledger must account for every manager cycle.
    return 0 if total_attributed == manager.total_cycles else 1


def cmd_verify(args) -> int:
    """Run the differential-oracle + invariant battery (repro.verify).

    Exit status 0 iff the run is clean: zero staged-vs-reference
    divergences, zero unclassified comparator disagreements, zero
    poison hits, zero invariant violations."""
    from .verify import run_verify

    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    # The requested engine leads the differential matrix (it is the
    # baseline the others are diffed against) and also becomes the
    # process default, so the smoke batteries exercise it too.
    engines = ((args.engine,)
               + tuple(e for e in ENGINES if e != args.engine))
    timings = ((args.timing,)
               + tuple(t for t in TIMING_MODELS if t != args.timing))
    with default_engine(args.engine), default_timing(args.timing):
        stats, report = run_verify(
            seeds=seeds, comparator_trials=args.comparator_trials,
            engines=engines, timings=timings)
    comparator = report["comparator"]
    lines = [
        f"engines:           {' vs '.join(report['engines'])}",
        f"timing matrix:     {' vs '.join(report['matrix'])}",
        f"oracle runs:       {report['oracle_runs']} "
        f"(seeds {seeds.start}..{seeds.stop - 1}, "
        f"{report['instructions']:,} instructions)",
        f"divergences:       {report['divergences']}",
        f"comparator trials: {comparator['trials']:,} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(comparator['classified'].items()))})",
        f"unclassified:      {comparator['unclassified']}",
        f"poison writes:     {report['poison_writes']} "
        f"(hits: {report['poison_hits']})",
        f"invariant checks:  {report['invariant_checks']} "
        f"(violations: {report['invariant_violations']})",
        f"determinism runs:  {report['determinism']['runs']} "
        f"(mismatches: {report['determinism']['mismatches']})",
        f"verdict:           {'CLEAN' if stats.clean else 'DIRTY'}",
    ]
    lines += [f"  FAIL: {failure}" for failure in report["failures"]]
    _emit(args, dict(report, stats=stats.as_dict()), "\n".join(lines))
    return 0 if stats.clean else 1


def cmd_chaos(args) -> int:
    """Run the chaos soak: seeded fault-injection through the
    supervised runtime (repro.chaos).

    Exit status 0 iff every seeded run ends clean: zero leaked pool
    slots, zero zombie sandboxes, clean pool invariants, and every
    injected fault classified (retried/shed/quarantined/killed)."""
    from .chaos import run_soak

    if args.seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    if not 0.0 <= args.fault_rate <= 1.0:
        raise SystemExit("--fault-rate must be in [0, 1]")
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    report = run_soak(seeds, n_requests=args.requests,
                      fault_rate=args.fault_rate,
                      strategy=args.strategy,
                      baseline=not args.no_baseline)
    breakdown = report.breakdown()
    retained = report.goodput_retained
    lines = [
        f"soak runs:         {report.runs} "
        f"(seeds {seeds.start}..{seeds.stop - 1}, "
        f"{args.requests} requests each, "
        f"fault rate {args.fault_rate:.0%})",
        f"faults injected:   {report.injected} "
        f"({', '.join(f'{k}={v}' for k, v in sorted(breakdown.items()))})",
        f"unaccounted:       {report.unaccounted}",
        f"leaked slots:      {report.leaked_slots}",
        f"zombie sandboxes:  {report.zombie_sandboxes}",
        f"invariant issues:  {report.invariant_violations}",
    ]
    if retained is not None:
        lines.append(f"goodput retained:  {retained:.1%} of fault-free")
    lines.append(
        f"verdict:           {'CLEAN' if report.clean else 'DIRTY'}")
    lines += [f"  FAIL: {failure}" for failure in report.failures()]
    payload = report.as_dict()
    if not args.verbose:
        payload.pop("seeds", None)
    _emit(args, payload, "\n".join(lines))
    return 0 if report.clean else 1


def cmd_serve(args) -> int:
    """Run the discrete-event production serving simulator
    (repro.runtime.serving) and compare isolation schemes under the
    same open-loop offered load."""
    from .runtime import SERVING_SCHEMES, ServingConfig, simulate_serving

    if args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    if args.load <= 0:
        raise SystemExit("--load must be > 0")
    schemes = ([s.strip() for s in args.schemes.split(",") if s.strip()]
               if args.schemes else list(SERVING_SCHEMES))
    config = ServingConfig(
        n_cores=args.cores, slots_per_shard=args.slots_per_shard,
        max_inflight=args.max_inflight
        if args.max_inflight else args.cores * args.slots_per_shard)
    rows = []
    runs = {}
    with default_engine(args.engine), default_timing(args.timing):
        for scheme in schemes:
            metrics = simulate_serving(
                scheme, n_requests=args.requests, seed=args.seed,
                arrival=args.arrival, offered_load=args.load,
                config=config)
            runs[scheme] = metrics.as_dict()
            rows.append((scheme, f"{metrics.goodput_rps:,.0f}",
                         f"{metrics.p50_ms:.2f}", f"{metrics.p99_ms:.2f}",
                         f"{metrics.p999_ms:.2f}", str(metrics.shed),
                         str(metrics.failed), str(metrics.steals),
                         str(metrics.peak_inflight)))
    table = format_table(
        ("scheme", "goodput req/s", "p50 ms", "p99 ms", "p99.9 ms",
         "shed", "failed", "steals", "peak inflight"), rows)
    header = (f"open-loop {args.arrival} arrivals, offered load "
              f"{args.load:.2f}x capacity, {args.cores} cores x "
              f"{args.slots_per_shard} slots, {args.requests} requests, "
              f"seed {args.seed}")
    payload = {"config": {"requests": args.requests, "seed": args.seed,
                          "arrival": args.arrival, "load": args.load,
                          "cores": args.cores,
                          "slots_per_shard": args.slots_per_shard,
                          "engine": args.engine, "timing": args.timing},
               "schemes": runs}
    _emit(args, payload, f"{header}\n\n{table}")
    # every request must be accounted for in every run
    return 0 if all(r["accounted"] for r in runs.values()) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hfi",
        description="HFI (ASPLOS '23) reproduction toolkit")
    # Shared by every subcommand that renders results.
    output = argparse.ArgumentParser(add_help=False)
    output.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    # Shared by every subcommand that executes instructions.
    engine = argparse.ArgumentParser(add_help=False)
    engine.add_argument("--engine", default="staged",
                        choices=sorted(ENGINES),
                        help="execution backend (default: staged)")
    engine.add_argument("--timing", default="inorder",
                        choices=sorted(TIMING_MODELS),
                        help="timing backend (default: inorder)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads",
                   help="list workloads and strategies").set_defaults(
        func=cmd_list_workloads)

    p = sub.add_parser("run", parents=[output, engine],
                       help="run one workload under one strategy")
    p.add_argument("workload")
    p.add_argument("--strategy", default="hfi",
                   choices=sorted(STRATEGIES))
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", parents=[output],
                       help="run one workload under several strategies")
    p.add_argument("workload")
    p.add_argument("--strategies",
                   default="guard-pages,bounds-check,hfi")
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("attack", help="run a Spectre PoC")
    p.add_argument("kind", choices=["pht", "btb", "rsb"])
    p.add_argument("--hfi", action="store_true",
                   help="protect the victim with HFI regions")
    p.add_argument("--secret", default="I")
    p.set_defaults(func=cmd_attack)

    sub.add_parser("nginx", parents=[output],
                   help="Fig. 5 throughput model").set_defaults(
        func=cmd_nginx)

    p = sub.add_parser("heap-growth", parents=[output],
                       help="§6.1 growth comparison")
    p.add_argument("--gib", type=int, default=1)
    p.set_defaults(func=cmd_heap_growth)

    p = sub.add_parser("chain", parents=[output],
                       help="§2 function chaining vs IPC")
    p.add_argument("--functions", type=int, default=4)
    p.add_argument("--payload", type=int, default=4096)
    p.set_defaults(func=cmd_chain)

    sub.add_parser("startup", parents=[output],
                   help="§1 start-up latency table").set_defaults(
        func=cmd_startup)

    p = sub.add_parser(
        "telemetry", parents=[output],
        help="multi-sandbox demo through a live telemetry sink")
    p.add_argument("--sandboxes", type=int, default=4)
    p.add_argument("--invocations", type=int, default=32)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="also write the full telemetry snapshot as JSON")
    p.set_defaults(func=cmd_telemetry)

    p = sub.add_parser(
        "verify", parents=[output, engine],
        help="differential oracle + comparator fuzz + invariant probes")
    p.add_argument("--seeds", type=int, default=50,
                   help="number of ISA fuzz seeds to run (default 50)")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first seed (CI rotates this nightly)")
    p.add_argument("--comparator-trials", type=int, default=20_000,
                   help="randomized comparator fuzz trials")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "chaos", parents=[output],
        help="seeded fault-injection soak through the supervised "
             "runtime")
    p.add_argument("--seeds", type=int, default=50,
                   help="number of seeded soak runs (default 50)")
    p.add_argument("--seed-base", type=int, default=0,
                   help="first seed (CI rotates this nightly)")
    p.add_argument("--requests", type=int, default=200,
                   help="base requests per seeded run")
    p.add_argument("--fault-rate", type=float, default=0.05,
                   help="per-request fault-injection probability")
    p.add_argument("--strategy", default="hfi",
                   choices=sorted(STRATEGIES),
                   help="isolation strategy backing the pool slots")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the fault-free baseline runs (faster; "
                        "omits goodput-retained)")
    p.add_argument("--verbose", action="store_true",
                   help="include per-seed detail in --json output")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "serve", parents=[output, engine],
        help="discrete-event serving simulator: open-loop load over "
             "sharded pools with work-stealing")
    p.add_argument("--schemes", default="",
                   help="comma-separated isolation schemes "
                        "(default: hfi,guard-pages,mpk)")
    p.add_argument("--requests", type=int, default=5000,
                   help="open-loop requests to offer (default 5000)")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed (runs are seed-deterministic)")
    p.add_argument("--arrival", default="poisson",
                   choices=("poisson", "mmpp"),
                   help="arrival process (mmpp = bursty)")
    p.add_argument("--load", type=float, default=0.8,
                   help="offered load relative to node capacity")
    p.add_argument("--cores", type=int, default=4,
                   help="worker cores, one pool shard each")
    p.add_argument("--slots-per-shard", type=int, default=16,
                   help="pooled instances per core shard")
    p.add_argument("--max-inflight", type=int, default=0,
                   help="admission bound on in-flight requests "
                        "(default: cores x slots-per-shard)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
