"""The metrics registry: counters, histograms, cycle accumulators.

Follows the gem5-stats shape the ROADMAP points at: metrics are
created on first use, named with dotted paths
(``cpu.hfi_enter``, ``pool.release``, ``sandbox.cycles``), and a
registry snapshot is a plain dict ready for JSON/CSV export.

Everything here is pure bookkeeping — no metric ever feeds back into
cycle accounting, which is what makes null-sink parity (identical
cycle counts with telemetry on or off) a structural guarantee rather
than a test hope.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Power-of-two bucketed value distribution (latencies, sizes)."""

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        bucket = max(0, int(value).bit_length()) if value >= 1 else 0
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> Dict[str, int]:
        """``{"<2^k": count}`` in ascending bucket order."""
        return {f"<{1 << k}": v
                for k, v in sorted(self._buckets.items())}


class CycleAccumulator:
    """Cycles charged under one name, attributable to sandboxes.

    ``add(cycles, key=7)`` books cycles both to the total and to
    sandbox 7; ``key=None`` books unattributed cycles (the trusted
    runtime itself).  ``sandbox.cycles`` is the accumulator the
    per-sandbox attribution report reads.
    """

    __slots__ = ("name", "total", "by_key")

    def __init__(self, name: str):
        self.name = name
        self.total = 0
        self.by_key: Dict[Optional[int], int] = {}

    def add(self, cycles: int, key: Optional[int] = None) -> None:
        self.total += cycles
        self.by_key[key] = self.by_key.get(key, 0) + cycles


class MetricsRegistry:
    """Get-or-create store for all three metric kinds."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.cycles: Dict[str, CycleAccumulator] = {}

    # -- get-or-create ------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def cycle_accumulator(self, name: str) -> CycleAccumulator:
        a = self.cycles.get(name)
        if a is None:
            a = self.cycles[name] = CycleAccumulator(name)
        return a

    # -- snapshot ------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "histograms": {
                n: {"count": h.count, "mean": h.mean, "min": h.min,
                    "max": h.max, "buckets": h.buckets()}
                for n, h in sorted(self.histograms.items())},
            "cycles": {
                n: {"total": a.total,
                    "by_key": {str(k): v for k, v in sorted(
                        a.by_key.items(),
                        key=lambda kv: (kv[0] is None, kv[0]))}}
                for n, a in sorted(self.cycles.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.cycles.clear()
