"""JSON/CSV serialization of telemetry snapshots.

The JSON form is the full :meth:`Telemetry.snapshot` dict; the CSV
forms are flat per-table files (metrics, spans, attribution) for
spreadsheet-style analysis of benchmark sweeps.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Optional

from .sink import Telemetry


def to_json(telemetry: Telemetry, indent: Optional[int] = 2) -> str:
    return json.dumps(telemetry.snapshot(), indent=indent, sort_keys=True)


def metrics_to_csv(telemetry: Telemetry) -> str:
    """Counters and cycle totals as ``kind,name,value`` rows."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "name", "value"])
    snap = telemetry.registry.as_dict()
    for name, value in snap["counters"].items():
        writer.writerow(["counter", name, value])
    for name, payload in snap["cycles"].items():
        writer.writerow(["cycles", name, payload["total"]])
    for name, payload in snap["histograms"].items():
        writer.writerow(["histogram_count", name, payload["count"]])
        writer.writerow(["histogram_mean", name, payload["mean"]])
    return buf.getvalue()


def spans_to_csv(telemetry: Telemetry) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["span_id", "name", "begin_cycle", "end_cycle",
                     "duration", "depth", "parent_id", "sandbox_id"])
    for span in telemetry.spans.spans:
        writer.writerow([span.span_id, span.name, span.begin_cycle,
                         span.end_cycle, span.duration, span.depth,
                         span.parent_id, span.sandbox_id])
    return buf.getvalue()


def attribution_to_csv(telemetry: Telemetry) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["sandbox_id", "cycles"])
    for key, cycles in sorted(telemetry.attribution().items(),
                              key=lambda kv: (kv[0] is None, kv[0])):
        writer.writerow(["runtime" if key is None else key, cycles])
    return buf.getvalue()


def write_json(telemetry: Telemetry, path: str) -> str:
    with open(path, "w") as fh:
        fh.write(to_json(telemetry) + "\n")
    return path


def write_csv(telemetry: Telemetry, path_prefix: str) -> Dict[str, str]:
    """Write ``<prefix>_metrics.csv``, ``_spans.csv``, ``_sandboxes.csv``."""
    out = {}
    for suffix, render in (("metrics", metrics_to_csv),
                           ("spans", spans_to_csv),
                           ("sandboxes", attribution_to_csv)):
        path = f"{path_prefix}_{suffix}.csv"
        with open(path, "w") as fh:
            fh.write(render(telemetry))
        out[suffix] = path
    return out
