"""Span-based tracing of sandbox lifecycle events.

A span is an interval on some monotonically increasing clock — the
CPU simulator uses its cycle counter, the analytic runtime layer uses
the manager's cycle ledger.  Spans nest: an ``hfi_enter`` opens a
``sandbox`` span inside the enclosing ``cpu.run`` span; a syscall
interposition is a zero-length event inside the sandbox span.

The log is single-threaded (the simulator is), so nesting is a plain
stack.  Faulting exits may leave a span open; ``close_all`` seals the
log at collection time without inventing durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    span_id: int
    name: str
    begin_cycle: int
    end_cycle: Optional[int] = None
    parent_id: Optional[int] = None
    depth: int = 0
    sandbox_id: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end_cycle is None

    @property
    def duration(self) -> Optional[int]:
        if self.end_cycle is None:
            return None
        return self.end_cycle - self.begin_cycle

    def as_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id, "name": self.name,
            "begin_cycle": self.begin_cycle, "end_cycle": self.end_cycle,
            "duration": self.duration, "parent_id": self.parent_id,
            "depth": self.depth, "sandbox_id": self.sandbox_id,
            "attrs": dict(self.attrs),
        }


class SpanLog:
    """Bounded, stack-disciplined span recorder."""

    def __init__(self, capacity: int = 100_000):
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._stack)

    def begin(self, name: str, cycle: int,
              sandbox_id: Optional[int] = None, **attrs) -> Optional[Span]:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(self._next_id, name, cycle,
                    parent_id=parent.span_id if parent else None,
                    depth=len(self._stack),
                    sandbox_id=sandbox_id if sandbox_id is not None
                    else (parent.sandbox_id if parent else None),
                    attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end(self, cycle: int, name: Optional[str] = None, **attrs) -> None:
        """Close the innermost open span (matching ``name`` if given).

        A faulting path may skip the exit of an inner span; ending a
        named outer span closes the skipped inner ones at the same
        cycle, preserving stack discipline.
        """
        if not self._stack:
            return
        if name is not None:
            if not any(s.name == name for s in self._stack):
                return
            while self._stack and self._stack[-1].name != name:
                self._stack.pop().end_cycle = cycle
        span = self._stack.pop()
        span.end_cycle = cycle
        span.attrs.update(attrs)

    def event(self, name: str, cycle: int,
              sandbox_id: Optional[int] = None, **attrs) -> Optional[Span]:
        """A zero-duration marker (syscall interposition, region install)."""
        span = self.begin(name, cycle, sandbox_id=sandbox_id, **attrs)
        if span is not None:
            self._stack.pop()
            span.end_cycle = cycle
        return span

    def close_all(self, cycle: Optional[int] = None) -> None:
        """Seal any still-open spans (e.g. a run that faulted out)."""
        while self._stack:
            span = self._stack.pop()
            if cycle is not None:
                span.end_cycle = cycle

    # ------------------------------------------------------------------
    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [s.as_dict() for s in self.spans]
