"""Unified telemetry: metrics registry, spans, uniform component stats.

The observability layer every other layer reports into — see
docs/api.md ("Telemetry & stats") for the user-facing walkthrough and
docs/architecture.md for where the sink hooks live.
"""

from .export import (
    attribution_to_csv,
    metrics_to_csv,
    spans_to_csv,
    to_json,
    write_csv,
    write_json,
)
from .registry import Counter, CycleAccumulator, Histogram, MetricsRegistry
from .sink import NULL_TELEMETRY, SANDBOX_CYCLES, NullTelemetry, Telemetry, coalesce
from .spans import Span, SpanLog
from .stats import (
    CacheStats,
    ComponentStats,
    HfiDeviceStats,
    KernelStats,
    MpkDomainStats,
    MpkVirtStats,
    OooStats,
    PoolStats,
    PredictorStats,
    RobustnessStats,
    SandboxManagerStats,
    SandboxStats,
    ServingStats,
    ShardedPoolStats,
    SuperblockStats,
    TlbStats,
    TracerStats,
    VerifyStats,
)

__all__ = [
    "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "SANDBOX_CYCLES",
    "coalesce", "Counter", "Histogram", "CycleAccumulator",
    "MetricsRegistry", "Span", "SpanLog",
    "ComponentStats", "SuperblockStats", "CacheStats", "TlbStats",
    "PredictorStats", "TracerStats", "SandboxStats",
    "SandboxManagerStats", "HfiDeviceStats", "PoolStats", "KernelStats",
    "OooStats", "MpkDomainStats", "MpkVirtStats",
    "VerifyStats", "RobustnessStats", "ServingStats", "ShardedPoolStats",
    "to_json", "metrics_to_csv", "spans_to_csv", "attribution_to_csv",
    "write_json", "write_csv",
]
