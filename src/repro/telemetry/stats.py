"""Uniform component statistics — the ``.stats()`` API.

Every measurable component (caches, TLB, predictors, tracer, sandbox
manager, HFI state) exposes one method::

    component.stats() -> ComponentStats

returning a frozen-in-time dataclass snapshot.  The dataclasses share
a small base so exporters can treat them generically: ``as_dict()``
includes derived properties (hit rates, shares) alongside raw
counters, which is what the JSON/CSV exporters and ``repro-hfi
telemetry --json`` emit.

``component.stats()`` is the *only* supported surface: the PR-1
transition shims (``StatsAccessor`` read-throughs like
``cache.stats.hits`` and deprecated raw counters like ``tlb.hits``)
have been removed after a deprecation cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ComponentStats:
    """Base snapshot type: a named component plus its counters."""

    component: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Fields plus computed ``@property`` values, JSON-ready."""
        out = dataclasses.asdict(self)
        for klass in type(self).__mro__:
            for name, attr in vars(klass).items():
                if isinstance(attr, property) and name not in out:
                    out[name] = getattr(self, name)
        return out


# ----------------------------------------------------------------------
# per-component snapshot types
# ----------------------------------------------------------------------
@dataclass
class CacheStats(ComponentStats):
    """One cache level (or the TLB treated as a cache of translations)."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class TlbStats(CacheStats):
    """dTLB hit/miss counters plus shootdown count."""

    shootdowns: int = 0


@dataclass
class PredictorStats(ComponentStats):
    """PHT/BTB/RSB counters.

    ``correct``/``mispredicts`` are resolved at update time from the
    predictor's own pre-update state, so they agree with the CPU's
    global accounting without the predictor needing a backchannel.
    The RSB cannot see resolution, so it reports push/pop traffic and
    underflows instead (``correct``/``mispredicts`` stay zero).
    """

    lookups: int = 0
    updates: int = 0
    correct: int = 0
    mispredicts: int = 0
    underflows: int = 0
    entries: int = 0
    capacity: int = 0

    @property
    def accuracy(self) -> float:
        resolved = self.correct + self.mispredicts
        return self.correct / resolved if resolved else 0.0


@dataclass
class TracerStats(ComponentStats):
    """Summary of a committed/speculative instruction trace."""

    instructions: int = 0
    speculative_instructions: int = 0
    dropped: int = 0
    hfi_instructions: int = 0
    transitions: int = 0
    mix: Dict[str, int] = field(default_factory=dict)
    spec_mix: Dict[str, int] = field(default_factory=dict)

    @property
    def hfi_fraction(self) -> float:
        return (self.hfi_instructions / self.instructions
                if self.instructions else 0.0)


@dataclass
class SandboxStats(ComponentStats):
    """Per-sandbox attribution as tracked by the manager."""

    sandbox_id: int = 0
    invocations: int = 0
    cycles: int = 0
    heap_bytes: int = 0
    is_hybrid: bool = False


@dataclass
class SandboxManagerStats(ComponentStats):
    """Whole-manager rollup; ``sandboxes`` carries the attribution."""

    sandboxes_created: int = 0
    live_sandboxes: int = 0
    invocations: int = 0
    total_cycles: int = 0
    sandboxes: List[SandboxStats] = field(default_factory=list)

    @property
    def attributed_cycles(self) -> int:
        return sum(s.cycles for s in self.sandboxes)


@dataclass
class HfiDeviceStats(ComponentStats):
    """The HFI state machine's own observability counters."""

    enabled: bool = False
    is_hybrid: bool = False
    serializations: int = 0
    enters: int = 0
    exits: int = 0
    region_installs: int = 0


@dataclass
class PoolStats(ComponentStats):
    """Pooling-allocator slot traffic and recycle costs."""

    slots: int = 0
    available: int = 0
    acquires: int = 0
    releases: int = 0
    batched_flushes: int = 0
    setup_cycles: int = 0
    recycle_cycles: int = 0
    pending_discards: int = 0
    quarantined: int = 0
    quarantines: int = 0
    scrubs: int = 0
    scrub_failures: int = 0


@dataclass
class ShardedPoolStats(ComponentStats):
    """Per-core pool shards + work-stealing placement counters.

    ``local_acquires``/``steals`` partition successful acquires by
    where the slot came from; ``dry_flushes``/``scrub_rescues`` count
    how often a dry acquire had to force a batched-discard flush or a
    quarantine scrub to find capacity.
    """

    shards: int = 0
    slots: int = 0
    available: int = 0
    local_acquires: int = 0
    steals: int = 0
    exhausted: int = 0
    dry_flushes: int = 0
    scrub_rescues: int = 0
    quarantined: int = 0
    recycle_cycles: int = 0
    setup_cycles: int = 0

    @property
    def steal_rate(self) -> float:
        total = self.local_acquires + self.steals
        return self.steals / total if total else 0.0


@dataclass
class ServingStats(ComponentStats):
    """The discrete-event serving simulator's request ledger
    (``repro.runtime.serving``).

    Latency percentiles are in integer cycles (the simulator's native
    unit) so snapshots are bit-exact reproducible; presentation layers
    convert to wall time.  Every request ends in exactly one of
    ``succeeded``/``failed``/``shed``, mirroring the supervisor's
    partition.
    """

    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    shed: int = 0
    retried: int = 0
    quarantined: int = 0
    killed: int = 0
    breaker_shed: int = 0
    steals: int = 0
    peak_inflight: int = 0
    duration_cycles: int = 0
    busy_cycles: int = 0
    recycle_cycles: int = 0
    p50_cycles: int = 0
    p99_cycles: int = 0
    p999_cycles: int = 0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.requests if self.requests else 0.0

    @property
    def accounted(self) -> bool:
        return (self.succeeded + self.failed + self.shed
                == self.requests)


@dataclass
class MpkDomainStats(ComponentStats):
    """MPK key-table lifecycle counters (``repro.mpk.MpkDomainManager``).

    ``stale_untags`` counts ranges that were still tagged when their
    key was freed and had to be re-tagged to the default domain —
    each one is a stale-tag leak the old (non-recycling) allocator
    would have handed to the next tenant.  ``leaked_keys`` is the
    conservation check: keys handed out minus live minus free; it
    must stay 0 under any alloc/free interleaving.
    """

    allocated: int = 0
    free_keys: int = 0
    allocs: int = 0
    frees: int = 0
    stale_untags: int = 0
    leaked_keys: int = 0

    @property
    def churn(self) -> int:
        """Completed alloc→free cycles the table has absorbed."""
        return self.frees


@dataclass
class MpkVirtStats(ComponentStats):
    """Key-virtualization counters (``repro.mpk.MpkKeyVirtualizer``).

    Past 15 live domains, MPK switches stop being a bare wrpkru: a
    miss steals the least-recently-used physical key, paying
    ``pkey_mprotect`` untag+retag syscalls over both domains' pages.
    ``hits``/``misses`` partition switches by residency;
    ``retag_cycles`` is the virtualization tax the Fig. 5-analogue
    sweep plots against HFI's flat line.
    """

    domains: int = 0
    resident: int = 0
    switches: int = 0
    hits: int = 0
    misses: int = 0
    key_steals: int = 0
    retag_cycles: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.switches if self.switches else 0.0


@dataclass
class KernelStats(ComponentStats):
    """Syscall dispatch counters."""

    syscalls: int = 0
    seccomp_diverted: int = 0
    segv_delivered: int = 0
    syscall_cycles: int = 0


@dataclass
class DecodeCacheStats(ComponentStats):
    """Predecode-cache effectiveness for the staged execution engine.

    ``predecoded`` counts ops lowered eagerly at ``load_program`` time,
    ``lazy_decodes`` those first reached through the slow path (e.g.
    instructions patched into ``_code`` by tests or JIT-style attacks),
    and ``invalidations`` how many cached ops were discarded by such
    patches.  ``executed`` is total committed + speculative dynamic
    instructions, so ``hits`` approximates dynamic cache hits.
    """

    predecoded: int = 0
    lazy_decodes: int = 0
    invalidations: int = 0
    cached_ops: int = 0
    executed: int = 0

    @property
    def hits(self) -> int:
        return max(self.executed - self.lazy_decodes, 0)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.executed if self.executed else 0.0


@dataclass
class SpeculationJournalStats(ComponentStats):
    """Undo-log traffic for journaled wrong-path speculation.

    One ``window`` per mispredict that opened speculation; every window
    rolls back, so ``rollbacks`` should equal ``windows``.
    ``hfi_snapshots`` counts copy-on-first-write HFI bank saves — it
    stays far below ``windows`` because most wrong paths never touch
    HFI state, which is exactly the saving over eager deepcopy.
    """

    windows: int = 0
    rollbacks: int = 0
    reg_entries: int = 0
    hfi_snapshots: int = 0

    @property
    def entries_per_window(self) -> float:
        return self.reg_entries / self.windows if self.windows else 0.0


@dataclass
class SuperblockStats(ComponentStats):
    """Superblock-compiler effectiveness (``blocks`` engine only).

    ``compiled``/``invalidated`` count block formation and
    code-write-driven teardown; ``cached`` is the live table size
    (including negative entries for too-short runs).  ``executions``
    is block dispatches, ``block_instructions`` the instructions they
    retired — their ratio is the fused run length the engine actually
    achieves.  ``fallbacks`` counts dispatches that found a compiled
    block but single-stepped anyway (HFI coverage not hoistable, or
    the block didn't fit the remaining instruction budget).
    """

    compiled: int = 0
    invalidated: int = 0
    executions: int = 0
    block_instructions: int = 0
    fallbacks: int = 0
    cached: int = 0

    @property
    def mean_block_length(self) -> float:
        return (self.block_instructions / self.executions
                if self.executions else 0.0)


@dataclass
class OooStats(ComponentStats):
    """Scoreboard counters of the out-of-order timing backend
    (``cpu/ooo.py``, ``timing="ooo"``).

    ``rob_stalls``/``prf_stalls``/``iq_stalls``/``lsq_stalls`` count
    dispatches delayed because the reorder buffer, physical register
    file, issue queue, or load/store queue was full. ``drains`` counts
    window drains (serializing instructions, precise exceptions,
    explicit ``drain_pending``). ``checks_overlapped`` vs
    ``checks_exposed`` is the paper's §4.2 claim in counter form: how
    often the hmov bounds check hid entirely under the access's own
    TLB+cache latency versus ending up on the critical path.
    """

    retired: int = 0
    drains: int = 0
    redirects: int = 0
    rob_stalls: int = 0
    prf_stalls: int = 0
    iq_stalls: int = 0
    lsq_stalls: int = 0
    peak_inflight: int = 0
    checks_overlapped: int = 0
    checks_exposed: int = 0

    @property
    def checks(self) -> int:
        return self.checks_overlapped + self.checks_exposed

    @property
    def overlap_rate(self) -> float:
        return self.checks_overlapped / self.checks if self.checks else 0.0


@dataclass
class RobustnessStats(ComponentStats):
    """The supervised runtime's fault ledger (``repro.runtime.supervisor``).

    Every request ends in exactly one of ``succeeded``/``failed``/
    ``shed``; every *injected or observed* fault ends in exactly one of
    ``retried``/``shed``/``quarantined``/``killed`` — the chaos soak
    gate asserts both partitions are exact.
    """

    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    shed: int = 0
    retried: int = 0
    quarantined: int = 0
    killed: int = 0
    watchdog_kills: int = 0
    sandboxes_reaped: int = 0
    breaker_trips: int = 0
    breaker_shed: int = 0
    retry_attempts: int = 0
    backoff_cycles: int = 0
    scrub_cycles: int = 0
    total_cycles: int = 0
    signals_handled: int = 0

    @property
    def goodput(self) -> float:
        """Successful requests per simulated cycle (×1e6 for legibility
        is left to presentation layers)."""
        return self.succeeded / self.total_cycles if self.total_cycles else 0.0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.requests if self.requests else 0.0


@dataclass
class VerifyStats(ComponentStats):
    """Correctness-tooling counters from the ``repro.verify`` layer.

    ``oracle_runs`` counts staged-vs-reference differential executions,
    ``divergences`` how many disagreed on architectural end-state.
    ``comparator_trials``/``comparator_disagreements``/``unclassified_disagreements``
    come from the hmov comparator fuzzer (a *classified* disagreement —
    permission, va-width — is an understood design limit; an
    unclassified one is a bug).  ``poison_hits`` and the invariant
    counters come from the sanitizer probes in ``verify.invariants``.
    """

    oracle_runs: int = 0
    divergences: int = 0
    comparator_trials: int = 0
    comparator_disagreements: int = 0
    unclassified_disagreements: int = 0
    poison_writes: int = 0
    poison_hits: int = 0
    invariant_checks: int = 0
    invariant_violations: int = 0
    chaos_runs: int = 0
    chaos_faults_injected: int = 0
    chaos_faults_unaccounted: int = 0
    chaos_leaked_slots: int = 0
    chaos_zombie_sandboxes: int = 0
    determinism_runs: int = 0
    determinism_mismatches: int = 0

    @property
    def clean(self) -> bool:
        return (self.divergences == 0
                and self.unclassified_disagreements == 0
                and self.poison_hits == 0
                and self.invariant_violations == 0
                and self.chaos_faults_unaccounted == 0
                and self.chaos_leaked_slots == 0
                and self.chaos_zombie_sandboxes == 0
                and self.determinism_mismatches == 0)
