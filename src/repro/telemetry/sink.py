"""The ``Telemetry`` sink — the one object every layer reports into.

Components take an optional ``telemetry`` argument and default to the
shared :data:`NULL_TELEMETRY` sink, whose every method is a no-op and
whose ``enabled`` flag is False, so instrumented hot paths cost one
attribute test when telemetry is off.  Telemetry *never* feeds back
into cycle accounting: with the null sink or a real sink, simulated
cycle counts are identical by construction.

Wiring pattern (see docs/architecture.md)::

    tel = Telemetry()
    manager = SandboxManager(params, telemetry=tel)
    ... run work ...
    tel.snapshot()            # JSON-ready dict
    tel.attribution()         # {sandbox_id: cycles}
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from .registry import MetricsRegistry
from .spans import Span, SpanLog
from .stats import ComponentStats

#: Accumulator name carrying the per-sandbox cycle attribution.
SANDBOX_CYCLES = "sandbox.cycles"


class Telemetry:
    """A live metrics registry + span log + component collectors."""

    enabled = True

    def __init__(self, span_capacity: int = 100_000):
        self.registry = MetricsRegistry()
        self.spans = SpanLog(capacity=span_capacity)
        self._collectors: List[Tuple[str, Callable[[], ComponentStats]]] = []

    # -- identity across copy/deepcopy ---------------------------------
    # The CPU deep-copies HfiState around speculation windows; any
    # object graph holding a sink must share it, never clone it.
    def __copy__(self) -> "Telemetry":
        return self

    def __deepcopy__(self, memo) -> "Telemetry":
        return self

    # -- metrics -------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def add_cycles(self, name: str, cycles: int,
                   sandbox_id: Optional[int] = None) -> None:
        self.registry.cycle_accumulator(name).add(cycles, sandbox_id)

    def attribute(self, sandbox_id: Optional[int], cycles: int) -> None:
        """Book cycles against one sandbox (None = trusted runtime)."""
        self.registry.cycle_accumulator(SANDBOX_CYCLES).add(
            cycles, sandbox_id)

    # -- spans ---------------------------------------------------------
    def begin_span(self, name: str, cycle: int,
                   sandbox_id: Optional[int] = None,
                   **attrs) -> Optional[Span]:
        return self.spans.begin(name, cycle, sandbox_id=sandbox_id, **attrs)

    def end_span(self, cycle: int, name: Optional[str] = None,
                 **attrs) -> None:
        self.spans.end(cycle, name=name, **attrs)

    def event(self, name: str, cycle: int,
              sandbox_id: Optional[int] = None, **attrs) -> None:
        self.spans.event(name, cycle, sandbox_id=sandbox_id, **attrs)

    @contextmanager
    def span(self, name: str, clock: Callable[[], int],
             sandbox_id: Optional[int] = None, **attrs):
        """Context-manager span over a caller-supplied cycle clock."""
        self.begin_span(name, clock(), sandbox_id=sandbox_id, **attrs)
        try:
            yield self
        finally:
            self.end_span(clock(), name=name)

    # -- component stats -----------------------------------------------
    def register_component(
            self, name: str,
            stats_fn: Callable[[], ComponentStats]) -> None:
        """Attach a ``.stats()``-style collector, sampled at snapshot."""
        self._collectors = [(n, f) for n, f in self._collectors
                            if n != name]
        self._collectors.append((name, stats_fn))

    def collect(self) -> Dict[str, ComponentStats]:
        return {name: fn() for name, fn in self._collectors}

    # -- export --------------------------------------------------------
    def attribution(self) -> Dict[Optional[int], int]:
        """Per-sandbox cycles booked via :meth:`attribute`."""
        acc = self.registry.cycles.get(SANDBOX_CYCLES)
        return dict(acc.by_key) if acc is not None else {}

    def snapshot(self) -> Dict[str, object]:
        """Everything, JSON-ready (spans capped by the log's capacity)."""
        snap = self.registry.as_dict()
        snap["sandbox_cycles"] = {
            str(k): v for k, v in self.attribution().items()}
        snap["spans"] = self.spans.as_dicts()
        snap["spans_dropped"] = self.spans.dropped
        snap["components"] = {
            name: stats.as_dict() for name, stats in self.collect().items()}
        return snap

    def reset(self) -> None:
        self.registry.reset()
        self.spans = SpanLog(capacity=self.spans.capacity)


class NullTelemetry(Telemetry):
    """The default sink: does nothing, shares one global instance.

    Keeps the full interface so instrumented code never branches on
    sink type — only, optionally, on the cheap ``enabled`` flag.
    """

    enabled = False

    def __init__(self):
        super().__init__(span_capacity=0)

    def count(self, name, n=1):
        pass

    def observe(self, name, value):
        pass

    def add_cycles(self, name, cycles, sandbox_id=None):
        pass

    def attribute(self, sandbox_id, cycles):
        pass

    def begin_span(self, name, cycle, sandbox_id=None, **attrs):
        return None

    def end_span(self, cycle, name=None, **attrs):
        pass

    def event(self, name, cycle, sandbox_id=None, **attrs):
        pass

    @contextmanager
    def span(self, name, clock, sandbox_id=None, **attrs):
        yield self

    def register_component(self, name, stats_fn):
        pass


#: The process-wide default sink.
NULL_TELEMETRY = NullTelemetry()


def coalesce(telemetry: Optional[Telemetry]) -> Telemetry:
    """``telemetry or NULL_TELEMETRY`` with an explicit name."""
    return telemetry if telemetry is not None else NULL_TELEMETRY
