"""Machine and OS cost parameters — the analogue of the paper's Table 2.

All latencies are in CPU cycles at ``frequency_ghz``.  The values are
calibrated to a Skylake-class core (the paper's gem5 baseline and its
i7-6700K measurement machine): L1 4 cycles, L2 12, DRAM ~200, branch
mispredict ~15, serializing drain 30-60 (paper §3.4), syscall entry/exit
on the order of a thousand cycles, ``wrpkru`` in the 20-30 range
(ERIM's measurement).  The reproduction claims *relative* fidelity, so
every experiment reads its costs from one :class:`MachineParams`
instance and can be re-run under different calibrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class MachineParams:
    """Latency/cost table shared by the CPU simulator and the OS model."""

    frequency_ghz: float = 3.3

    # --- pipeline ---
    base_cycles: int = 1              # single ALU/mov op throughput cost
    mul_cycles: int = 3
    div_cycles: int = 20
    branch_mispredict_penalty: int = 15
    serialize_drain_cycles: int = 40  # cpuid/lfence/serialized hfi_enter
    speculation_window: int = 64      # ROB-bounded wrong-path depth

    # --- out-of-order timing backend (cpu/ooo.py) ---
    ooo_width: int = 4                # fetch/issue/retire slots per cycle
    ooo_rob_depth: int = 128          # reorder-buffer / active-list entries
    ooo_iq_depth: int = 48            # issue-queue entries
    ooo_lsq_depth: int = 48           # load/store-queue entries
    ooo_phys_regs: int = 144          # physical register file size
    ooo_hmov_check_cycles: int = 1    # hmov bounds-check path length;
                                      # overlapped with the dTLB lookup

    # --- caches / TLB (latencies are *additional* over base) ---
    l1d_hit_cycles: int = 4
    l2_hit_cycles: int = 12
    mem_cycles: int = 200
    l1i_hit_cycles: int = 0           # fetch hit folded into base cost
    l1i_miss_cycles: int = 12
    dtlb_miss_cycles: int = 30

    l1d_sets: int = 64
    l1d_ways: int = 8
    line_bytes: int = 64
    l1i_sets: int = 64
    l1i_ways: int = 8
    dtlb_entries: int = 64

    # --- HFI (paper §3, §4) ---
    hfi_enter_cycles: int = 10        # unserialized: order of a call
    hfi_exit_cycles: int = 8
    hfi_set_region_cycles: int = 6    # plus the descriptor loads
    hfi_clear_region_cycles: int = 2
    hfi_syscall_check_cycles: int = 1 # §4.4: single-cycle decode check
    hmov_extra_cycles: int = 0        # §4.2: checks run in parallel, free
    #: §4.3's extension: rename HFI metadata registers like GPRs, so
    #: region updates inside hybrid sandboxes need not serialize
    #: ("trading complexity for improved performance").
    hfi_region_rename: bool = False

    clflush_cycles: int = 50
    rdtsc_cycles: int = 25

    # --- MPK baseline ---
    wrpkru_cycles: int = 25
    rdpkru_cycles: int = 2

    # --- OS / kernel ---
    syscall_cycles: int = 1200        # ring transition + dispatch + return
    seccomp_base_cycles: int = 24     # BPF program setup per syscall
    seccomp_per_rule_cycles: int = 2
    signal_delivery_cycles: int = 4000
    process_context_switch_cycles: int = 3000
    xsave_cycles: int = 100
    xrstor_cycles: int = 100
    xsave_hfi_extra_cycles: int = 12  # save/restore of the 22 HFI regs

    # --- virtual memory operations ---
    page_bytes: int = 4096
    va_bits: int = 48                 # user virtual address space width
    mmap_fixed_cycles: int = 2000
    munmap_fixed_cycles: int = 2500
    mprotect_fixed_cycles: int = 12000  # VMA split/merge + PT update
    mprotect_per_page_cycles: int = 30
    madvise_fixed_cycles: int = 2200
    madvise_per_present_page_cycles: int = 2000  # zap + TLB inval + free
    madvise_per_vma_cycles: int = 150          # VMA-tree walk per area
    madvise_per_reserved_gb_cycles: int = 1000 # sparse PTE-range skip
    tlb_shootdown_cycles: int = 4000  # IPI round when concurrent

    # --- runtime bookkeeping (Wasmtime-like memory_grow path) ---
    memory_grow_bookkeeping_cycles: int = 400

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e9)

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e3)

    def with_overrides(self, **kwargs) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Shared default calibration used across benchmarks and tests.
DEFAULT_PARAMS = MachineParams()


def skylake() -> MachineParams:
    """The paper's main machine: i7-6700K (Skylake, 4 GHz) — §5.2.

    Matches the gem5 baseline of Table 2 in character; most benchmarks
    run on this calibration.
    """
    return MachineParams(frequency_ghz=4.0)


def tigerlake() -> MachineParams:
    """The §6.4.2 machine: i7-1165G7 (Tigerlake, 2.8 GHz) with MPK.

    Willow Cove widens the core slightly: cheaper mispredicts relative
    to depth, a larger L2 (modelled as a lower L2 latency), and MPK
    support (wrpkru measured around the same ~25 cycles).
    """
    return MachineParams(frequency_ghz=2.8,
                         branch_mispredict_penalty=17,
                         l2_hit_cycles=10,
                         speculation_window=96)
