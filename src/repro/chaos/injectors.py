"""Seeded fault planners — the chaos half of the robustness layer.

A :class:`ChaosInjector` is built from a seed and a
:class:`ChaosConfig` and *plans* faults up front: for each request
index an independent draw decides whether a fault fires and which
:class:`~repro.runtime.supervisor.FaultKind` it is.  Planning is pure
(no global RNG, no wall clock), so a seed fully determines a run —
the property the soak gate and CI rely on.

Burst overload is special: it manifests as *extra traffic*, not a
per-request failure, so the injector also synthesizes tagged
low-priority requests (:meth:`ChaosInjector.burst_requests`) sized
past the supervisor's admission limit — guaranteeing the fault is
observable (and therefore classifiable as ``shed``) rather than
silently absorbed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.supervisor import FaultKind, Injection, Priority, Request

#: Catalog order is load-bearing: the planner's weighted draw walks it
#: in this order, so reordering would change seeded plans.
CHAOS_KINDS: List[FaultKind] = [
    FaultKind.TRANSIENT_KERNEL,
    FaultKind.GUEST_FAULT,
    FaultKind.GUEST_HANG,
    FaultKind.SLOT_CORRUPTION,
    FaultKind.HEAP_OOM,
    FaultKind.BURST_OVERLOAD,
]

#: Relative weights: transient errors dominate real fleets; hangs and
#: bursts are rarer but costlier.
DEFAULT_MIX: Dict[FaultKind, float] = {
    FaultKind.TRANSIENT_KERNEL: 0.30,
    FaultKind.GUEST_FAULT: 0.25,
    FaultKind.GUEST_HANG: 0.15,
    FaultKind.SLOT_CORRUPTION: 0.12,
    FaultKind.HEAP_OOM: 0.10,
    FaultKind.BURST_OVERLOAD: 0.08,
}


@dataclass
class ChaosConfig:
    """Knobs for one injector."""

    fault_rate: float = 0.05
    mix: Dict[FaultKind, float] = field(
        default_factory=lambda: dict(DEFAULT_MIX))
    #: Synthetic requests per burst beyond the admission limit; sized
    #: so at least this many must be shed.
    burst_margin: int = 8
    #: Service cycles for synthetic burst requests.
    burst_service_cycles: int = 30_000


class ChaosInjector:
    """Plans a deterministic fault schedule over a request stream."""

    def __init__(self, seed: int, config: Optional[ChaosConfig] = None):
        self.seed = seed
        self.config = config if config is not None else ChaosConfig()
        self._rng = random.Random((seed << 20) ^ 0xCA05)
        self._by_request: Dict[int, Injection] = {}
        self._planned: List[Injection] = []
        self._plan_drawn = False

    # ------------------------------------------------------------------
    def plan(self, n_requests: int) -> List[Injection]:
        """Draw the fault schedule for request indices [0, n)."""
        if self._plan_drawn:
            raise RuntimeError("injector already planned; build a new one")
        self._plan_drawn = True
        config = self.config
        kinds = [k for k in CHAOS_KINDS if config.mix.get(k, 0.0) > 0]
        weights = [config.mix[k] for k in kinds]
        for index in range(n_requests):
            if self._rng.random() >= config.fault_rate:
                continue
            kind = self._rng.choices(kinds, weights=weights, k=1)[0]
            injection = Injection(
                injection_id=len(self._planned),
                request_index=index, kind=kind)
            self._planned.append(injection)
            self._by_request[index] = injection
        return list(self._planned)

    def injection_for(self, request_index: int) -> Optional[Injection]:
        """The supervisor's per-request lookup (stable across calls)."""
        return self._by_request.get(request_index)

    # ------------------------------------------------------------------
    def burst_requests(self, trigger: Request, queue_limit: int,
                       next_index: int) -> List[Request]:
        """Synthesize the extra traffic for a burst injection at
        ``trigger``'s arrival instant.

        Returns ``queue_limit + burst_margin`` tagged LOW-priority
        requests — strictly more than admission can hold, so the
        supervisor must shed some of them and the injection is
        guaranteed to be accounted.
        """
        injection = self._by_request.get(trigger.index)
        if injection is None or injection.kind is not FaultKind.BURST_OVERLOAD:
            return []
        size = queue_limit + self.config.burst_margin
        injection.detail["burst_size"] = size
        return [
            Request(index=next_index + k,
                    tenant=f"burst-{self.seed}-{injection.injection_id}",
                    service_cycles=self.config.burst_service_cycles,
                    priority=Priority.LOW,
                    arrival_cycle=trigger.arrival_cycle,
                    injection=injection)
            for k in range(size)
        ]

    # ------------------------------------------------------------------
    @property
    def injected(self) -> int:
        return len(self._planned)

    def injections(self) -> List[Injection]:
        return list(self._planned)

    def unaccounted(self) -> List[Injection]:
        """Injections the supervisor never classified — each one is a
        soak-gate failure."""
        return [i for i in self._planned if i.classified is None]

    def breakdown(self) -> Dict[str, int]:
        """``{classification: count}`` over the classified plan."""
        out: Dict[str, int] = {}
        for injection in self._planned:
            key = injection.classified or "unaccounted"
            out[key] = out.get(key, 0) + 1
        return out
