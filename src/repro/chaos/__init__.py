"""Deterministic, seeded chaos/fault-injection for the supervised runtime.

Two halves:

* :mod:`repro.chaos.injectors` — a seeded planner that decides, per
  request, which fault from the catalog fires
  (:class:`~repro.runtime.supervisor.FaultKind`), plus synthetic burst
  traffic for overload injection.  Same seed → same plan, always.
* :mod:`repro.chaos.soak` — the soak harness and gate: N seeded
  serving runs through :class:`~repro.runtime.supervisor.Supervisor`,
  each audited for leaked pool slots, zombie sandboxes, pool-invariant
  violations, and unaccounted injections.

``repro-hfi chaos`` and the CI ``chaos-soak`` job wrap
:func:`run_soak`; ``repro.verify`` runs a short soak as part of its
gate.
"""

from .injectors import CHAOS_KINDS, ChaosConfig, ChaosInjector, DEFAULT_MIX
from .soak import SeedOutcome, SoakReport, build_workload, run_soak

__all__ = [
    "ChaosConfig", "ChaosInjector", "DEFAULT_MIX", "CHAOS_KINDS",
    "SeedOutcome", "SoakReport", "build_workload", "run_soak",
]
