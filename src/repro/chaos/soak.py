"""The chaos soak harness and gate.

One *soak* = N seeded serving runs.  Each run builds a deterministic
open-loop workload, plans a fault schedule with
:class:`~repro.chaos.injectors.ChaosInjector`, serves it through a
:class:`~repro.runtime.supervisor.Supervisor` with the pool sanitizer
armed, then audits the wreckage:

* **zero leaked pool slots** — after shutdown every slot is back on
  the free list;
* **zero zombie sandboxes** — the manager holds no live handles;
* **pool invariants clean** — the
  :class:`~repro.verify.invariants.PoolInvariants` probe saw no
  free-list/quarantine inconsistency and no poisoned read;
* **every injected fault accounted** — each planned injection carries
  exactly one ``retried``/``shed``/``quarantined``/``killed`` stamp.

*Goodput retained* compares base-workload throughput (successful base
requests per simulated second, burst traffic excluded) against the
same seed served with no faults injected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..params import MachineParams
from ..runtime.pool import InstancePool
from ..runtime.sandbox import SandboxManager
from ..runtime.supervisor import (
    Priority,
    Request,
    Supervisor,
    SupervisorConfig,
)
from .injectors import ChaosConfig, ChaosInjector


def build_workload(seed: int, n_requests: int, *, tenants: int = 6,
                   mean_interarrival_cycles: int = 100_000,
                   ) -> List[Request]:
    """Deterministic open-loop tenant traffic for one soak run."""
    rng = random.Random((seed << 8) ^ 0xB0B)
    requests: List[Request] = []
    clock = 0
    for index in range(n_requests):
        clock += int(rng.expovariate(1.0 / mean_interarrival_cycles))
        draw = rng.random()
        priority = (Priority.HIGH if draw < 0.10
                    else Priority.LOW if draw < 0.30
                    else Priority.NORMAL)
        requests.append(Request(
            index=index,
            tenant=f"tenant-{rng.randrange(tenants)}",
            service_cycles=rng.randrange(20_000, 120_000),
            priority=priority,
            arrival_cycle=clock))
    return requests


@dataclass
class SeedOutcome:
    """Audit of one seeded serving run."""

    seed: int
    fault_rate: float
    requests: int = 0            # base workload only
    synthetic: int = 0           # injected burst traffic
    succeeded: int = 0           # base successes
    failed: int = 0
    shed: int = 0
    injected: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)
    unaccounted: int = 0
    leaked_slots: int = 0
    zombie_sandboxes: int = 0
    invariant_violations: int = 0
    poison_hits: int = 0
    invariant_checks: int = 0
    total_cycles: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def goodput_rps(self) -> float:
        """Base-workload successes per simulated second."""
        if self.total_cycles <= 0:
            return 0.0
        seconds = MachineParams().cycles_to_seconds(self.total_cycles)
        return self.succeeded / seconds

    @property
    def clean(self) -> bool:
        return (self.unaccounted == 0 and self.leaked_slots == 0
                and self.zombie_sandboxes == 0
                and self.invariant_violations == 0
                and self.poison_hits == 0
                and not self.failures)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed, "fault_rate": self.fault_rate,
            "requests": self.requests, "synthetic": self.synthetic,
            "succeeded": self.succeeded, "failed": self.failed,
            "shed": self.shed, "injected": self.injected,
            "breakdown": dict(self.breakdown),
            "unaccounted": self.unaccounted,
            "leaked_slots": self.leaked_slots,
            "zombie_sandboxes": self.zombie_sandboxes,
            "invariant_violations": self.invariant_violations,
            "poison_hits": self.poison_hits,
            "total_cycles": self.total_cycles,
            "goodput_rps": self.goodput_rps,
            "clean": self.clean,
            "failures": list(self.failures),
        }


def run_seed(seed: int, *, n_requests: int = 200,
             fault_rate: float = 0.05,
             strategy: str = "hfi",
             pool_slots: int = 8,
             config: Optional[SupervisorConfig] = None,
             chaos_config: Optional[ChaosConfig] = None,
             params: Optional[MachineParams] = None) -> SeedOutcome:
    """One seeded chaos run through a fresh supervised runtime."""
    from ..verify.invariants import PoolInvariants, check_pool
    from ..wasm import make_strategy

    params = params if params is not None else MachineParams()
    outcome = SeedOutcome(seed=seed, fault_rate=fault_rate)
    manager = SandboxManager(params)
    pool = InstancePool(manager.space, make_strategy(strategy),
                        slots=pool_slots, heap_bytes=1 << 16,
                        params=params, batch_teardown=True)
    probe = PoolInvariants(raise_on_violation=False).install(pool)
    supervisor = Supervisor(manager, pool, config, seed=seed)
    chaos_config = (chaos_config if chaos_config is not None
                    else ChaosConfig(fault_rate=fault_rate))
    chaos_config.fault_rate = fault_rate
    injector = ChaosInjector(seed, chaos_config)
    base = build_workload(seed, n_requests)
    injector.plan(n_requests)

    # Weave synthetic burst traffic into the stream at its trigger's
    # arrival instant.
    stream: List[Request] = []
    next_index = n_requests
    for request in base:
        stream.append(request)
        extra = injector.burst_requests(
            request, supervisor.config.queue_limit, next_index)
        stream.extend(extra)
        next_index += len(extra)

    try:
        results = supervisor.serve(stream, injector)
        supervisor.shutdown()
    finally:
        probe.uninstall()

    base_results = [r for r in results if r.request.injection is None]
    outcome.requests = len(base_results)
    outcome.synthetic = len(results) - len(base_results)
    outcome.succeeded = sum(r.status == "ok" for r in base_results)
    outcome.failed = sum(r.status == "failed" for r in results)
    outcome.shed = sum(r.status == "shed" for r in results)
    outcome.injected = injector.injected
    outcome.breakdown = injector.breakdown()
    outcome.unaccounted = len(injector.unaccounted())
    outcome.total_cycles = supervisor.counters.total_cycles
    outcome.leaked_slots = len(pool.slots) - pool.available
    outcome.zombie_sandboxes = manager.live_sandboxes
    outcome.invariant_violations = probe.violations
    outcome.poison_hits = probe.poison_hits
    outcome.invariant_checks = probe.checks
    for injection in injector.unaccounted()[:4]:
        outcome.failures.append(
            f"seed {seed}: injection #{injection.injection_id} "
            f"({injection.kind.value} at request "
            f"{injection.request_index}) never classified")
    for problem in check_pool(pool)[:4]:
        outcome.failures.append(f"seed {seed}: {problem}")
    for message in probe.violation_log[:4]:
        outcome.failures.append(f"seed {seed}: pool invariant: {message}")
    if outcome.leaked_slots:
        outcome.failures.append(
            f"seed {seed}: {outcome.leaked_slots} pool slot(s) leaked")
    if outcome.zombie_sandboxes:
        outcome.failures.append(
            f"seed {seed}: {outcome.zombie_sandboxes} zombie sandbox(es)")
    return outcome


@dataclass
class SoakReport:
    """Aggregate verdict over a seed matrix."""

    fault_rate: float
    outcomes: List[SeedOutcome] = field(default_factory=list)
    baseline_outcomes: List[SeedOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def injected(self) -> int:
        return sum(o.injected for o in self.outcomes)

    @property
    def unaccounted(self) -> int:
        return sum(o.unaccounted for o in self.outcomes)

    @property
    def leaked_slots(self) -> int:
        return sum(o.leaked_slots for o in self.outcomes)

    @property
    def zombie_sandboxes(self) -> int:
        return sum(o.zombie_sandboxes for o in self.outcomes)

    @property
    def invariant_violations(self) -> int:
        return sum(o.invariant_violations + o.poison_hits
                   for o in self.outcomes)

    @property
    def clean(self) -> bool:
        return all(o.clean for o in self.outcomes)

    def breakdown(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for o in self.outcomes:
            for key, value in o.breakdown.items():
                out[key] = out.get(key, 0) + value
        return out

    @property
    def goodput_retained(self) -> Optional[float]:
        """Chaos goodput / clean-run goodput (None without a baseline)."""
        if not self.baseline_outcomes:
            return None
        chaos = sum(o.succeeded for o in self.outcomes)
        chaos_cycles = sum(o.total_cycles for o in self.outcomes)
        clean = sum(o.succeeded for o in self.baseline_outcomes)
        clean_cycles = sum(o.total_cycles for o in self.baseline_outcomes)
        if not (chaos_cycles and clean_cycles and clean):
            return None
        return (chaos / chaos_cycles) / (clean / clean_cycles)

    def failures(self) -> List[str]:
        out: List[str] = []
        for o in self.outcomes:
            out.extend(o.failures)
        return out

    def as_dict(self) -> dict:
        return {
            "fault_rate": self.fault_rate,
            "runs": self.runs,
            "injected": self.injected,
            "breakdown": self.breakdown(),
            "unaccounted": self.unaccounted,
            "leaked_slots": self.leaked_slots,
            "zombie_sandboxes": self.zombie_sandboxes,
            "invariant_violations": self.invariant_violations,
            "goodput_retained": self.goodput_retained,
            "clean": self.clean,
            "failures": self.failures(),
            "seeds": [o.as_dict() for o in self.outcomes],
        }


def run_soak(seeds, *, n_requests: int = 200, fault_rate: float = 0.05,
             strategy: str = "hfi", pool_slots: int = 8,
             config: Optional[SupervisorConfig] = None,
             chaos_config: Optional[ChaosConfig] = None,
             baseline: bool = True,
             params: Optional[MachineParams] = None) -> SoakReport:
    """Run the soak over ``seeds``; with ``baseline`` also serve each
    seed's identical workload fault-free to compute goodput retained."""
    report = SoakReport(fault_rate=fault_rate)
    for seed in seeds:
        report.outcomes.append(run_seed(
            seed, n_requests=n_requests, fault_rate=fault_rate,
            strategy=strategy, pool_slots=pool_slots, config=config,
            chaos_config=chaos_config, params=params))
        if baseline and fault_rate > 0:
            report.baseline_outcomes.append(run_seed(
                seed, n_requests=n_requests, fault_rate=0.0,
                strategy=strategy, pool_slots=pool_slots, config=config,
                params=params))
    return report
