"""Shared fixtures and helpers for the benchmark harness.

Every module in this directory regenerates one of the paper's tables
or figures.  Benchmarks execute *simulated* experiments; the
pytest-benchmark timer measures the harness itself (one round), while
the scientific outputs — paper-style rows/series — are printed and
persisted under ``benchmarks/results/``.
"""

import pytest

from repro.params import MachineParams
from repro.wasm import WasmRuntime


@pytest.fixture(scope="session")
def params():
    return MachineParams()


def run_module(module, strategy, reserve_extra_regs=0,
               max_instructions=30_000_000):
    """Instantiate + run a wir module; returns (cycles, result-global,
    binary size, RunResult)."""
    runtime = WasmRuntime()
    instance = runtime.instantiate(module, strategy,
                                   reserve_extra_regs=reserve_extra_regs)
    result = runtime.run(instance, max_instructions)
    assert result.reason == "hlt", (
        f"{module.name} under {strategy.name}: {result.reason} "
        f"{result.fault}")
    value = runtime.space.read(instance.layout.globals_base)
    return result.stats.cycles, value, instance.compiled.binary_size, result


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
