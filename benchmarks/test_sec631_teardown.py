"""§6.3.1 — cost of sandbox teardown in a FaaS runtime.

Paper: over 2000 sandboxes running a trivial workload,
* stock Wasmtime (one madvise per sandbox): 25.7 us/sandbox,
* HFI-Wasmtime (batched madvise, guard pages elided): 23.1 us (-10.1%),
* non-HFI batched madvise (guard pages still in the span): 31.1 us.

Batching only wins when HFI has eliminated the guard regions between
adjacent heaps; otherwise the batched call pays for sweeping terabytes
of reserved guard address space.
"""

from conftest import once

from repro.analysis import emit, format_table
from repro.params import MachineParams
from repro.wasm import GuardPagesStrategy, HfiStrategy, WasmRuntime

N_SANDBOXES = 2000
HEAP_BYTES = 4 << 20       # 4 MiB heaps
TOUCHED_PAGES = 16         # the trivial workload dirties a few pages


def build(strategy_factory, params):
    runtime = WasmRuntime(params)
    instances = [
        runtime.reserve_instance(strategy_factory(), HEAP_BYTES,
                                 touch_pages=TOUCHED_PAGES)
        for _ in range(N_SANDBOXES)
    ]
    return runtime, instances


def run(params):
    # (1) stock: one madvise per sandbox (no guard pages needed for
    # the per-instance path to be correct; use HFI-style exact heaps)
    runtime, instances = build(HfiStrategy, params)
    stock = sum(runtime.teardown(i) for i in instances)

    # (2) HFI: batched madvise across adjacent guard-free heaps
    runtime, instances = build(HfiStrategy, params)
    hfi_batched = runtime.teardown_batch(instances)

    # (3) non-HFI: batched madvise with 4 GiB guards inside the span
    runtime, instances = build(GuardPagesStrategy, params)
    non_hfi_batched = runtime.teardown_batch(instances)
    return stock, hfi_batched, non_hfi_batched


def test_sec631_teardown(benchmark):
    params = MachineParams()
    stock, hfi_batched, non_hfi = once(benchmark, run, params)
    per = lambda total: params.cycles_to_us(total / N_SANDBOXES)
    rows = [
        ("stock (madvise per sandbox)", f"{per(stock):.2f}", "100.0%"),
        ("HFI batched (guards elided)", f"{per(hfi_batched):.2f}",
         f"{100 * hfi_batched / stock:.1f}%"),
        ("non-HFI batched (guards swept)", f"{per(non_hfi):.2f}",
         f"{100 * non_hfi / stock:.1f}%"),
    ]
    table = format_table(
        ["teardown policy", "us/sandbox (modelled)", "vs stock"],
        rows,
        title=("§6.3.1 teardown of 2000 sandboxes "
               "(paper: 25.7 us stock, 23.1 us HFI batched [-10.1%], "
               "31.1 us non-HFI batched)"))
    emit("sec631_teardown", table)

    # Shape: HFI batching wins; batching *without* guard elision loses.
    assert hfi_batched < stock < non_hfi
    improvement = 100 * (1 - hfi_batched / stock)
    regression = 100 * (non_hfi / stock - 1)
    assert 4.0 <= improvement <= 25.0, improvement   # paper: 10.1%
    assert 8.0 <= regression <= 60.0, regression     # paper: ~21%