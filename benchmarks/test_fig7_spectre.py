"""Fig. 7 / §5.3 — security evaluation: Spectre on the simulator.

Paper: the SafeSide in-place Spectre-PHT attack leaks a secret byte
(the letter 'I') via cache access latency when run without HFI; with
the secret outside HFI's regions, no access latency ever drops below
the attack's hit threshold.  The TransientFail Spectre-BTB attack is
likewise mitigated.
"""

from conftest import once

from repro.analysis import emit, format_series, format_table
from repro.attacks import (
    SpectreBtbAttack,
    SpectrePhtAttack,
    SpectreRsbAttack,
)
from repro.params import MachineParams

SECRET = ord("I")


def run(params):
    unprotected = SpectrePhtAttack(params, protect_with_hfi=False)
    r_unprot = unprotected.attack(secret_value=SECRET)
    protected = SpectrePhtAttack(params, protect_with_hfi=True)
    r_prot = protected.attack(secret_value=SECRET)

    btb_unprot = SpectreBtbAttack(params, protect_with_hfi=False)
    b_unprot = btb_unprot.attack(secret_value=SECRET)
    btb_prot = SpectreBtbAttack(params, protect_with_hfi=True)
    b_prot = btb_prot.attack(secret_value=SECRET)

    s_unprot = SpectreRsbAttack(params,
                                protect_with_hfi=False).attack(SECRET)
    s_prot = SpectreRsbAttack(params,
                              protect_with_hfi=True).attack(SECRET)
    return r_unprot, r_prot, b_unprot, b_prot, s_unprot, s_prot


def test_fig7_spectre(benchmark):
    params = MachineParams()
    (r_unprot, r_prot, b_unprot, b_prot,
     s_unprot, s_prot) = once(benchmark, run, params)

    # Fig. 7's two series: per-byte access latency around the secret.
    window = range(max(0, SECRET - 8), SECRET + 9)
    series = format_series(
        "latency-without-HFI", [chr(v) if 32 <= v < 127 else v
                                for v in window],
        [float(r_unprot.latencies[v]) for v in window], "{:.0f}")
    series += "\n" + format_series(
        "latency-with-HFI", [chr(v) if 32 <= v < 127 else v
                             for v in window],
        [float(r_prot.latencies[v]) for v in window], "{:.0f}")
    summary = format_table(
        ["attack", "HFI", "leaked?", "recovered", "min latency",
         "threshold"],
        [("Spectre-PHT", "off", r_unprot.leaked,
          repr(chr(r_unprot.leaked_value)) if r_unprot.leaked else "-",
          min(r_unprot.latencies), r_unprot.threshold),
         ("Spectre-PHT", "on", r_prot.leaked, "-",
          min(r_prot.latencies), r_prot.threshold),
         ("Spectre-BTB", "off", b_unprot.leaked,
          repr(chr(b_unprot.leaked_value)) if b_unprot.leaked else "-",
          min(b_unprot.latencies), b_unprot.threshold),
         ("Spectre-BTB", "on", b_prot.leaked, "-",
          min(b_prot.latencies), b_prot.threshold),
         ("Spectre-RSB*", "off", s_unprot.leaked,
          repr(chr(s_unprot.leaked_value)) if s_unprot.leaked else "-",
          min(s_unprot.latencies), s_unprot.threshold),
         ("Spectre-RSB*", "on", s_prot.leaked, "-",
          min(s_prot.latencies), s_prot.threshold)],
        title=("Fig. 7 / §5.3 Spectre security evaluation "
               "(paper: leak of 'I' without HFI; with HFI no latency "
               "below threshold; *RSB variant is our extension)"))
    emit("fig7_spectre", summary + "\n" + series)

    assert r_unprot.leaked and r_unprot.leaked_value == SECRET
    assert b_unprot.leaked and b_unprot.leaked_value == SECRET
    assert s_unprot.leaked and s_unprot.leaked_value == SECRET
    assert not r_prot.leaked
    assert min(r_prot.latencies) > r_prot.threshold
    assert not b_prot.leaked
    assert min(b_prot.latencies) > b_prot.threshold
    assert not s_prot.leaked
    assert min(s_prot.latencies) > s_prot.threshold