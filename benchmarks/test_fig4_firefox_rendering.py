"""§6.2 / Fig. 4 — Wasm-sandboxed rendering in Firefox.

Paper numbers:
* Font (libgraphite reflow x10): guard pages 1823 ms, bounds 2022 ms,
  HFI 1677 ms => HFI beats guard pages by 8.7%, bounds by ~17%.
* Image (libjpeg): HFI beats guard pages by 14%-37%; the speedup grows
  with image size (amortized serialized enters) and compression level
  (per-pixel compute => register pressure).
"""

from conftest import once, run_module

from repro.analysis import emit, format_table, speedup_pct
from repro.wasm import (
    BoundsCheckStrategy,
    GuardPagesStrategy,
    HfiStrategy,
)
from repro.workloads import COMPRESSION_ROUNDS, RESOLUTIONS, jpeg_decode
from repro.workloads.font import graphite_reflow


def run_font():
    module = graphite_reflow()
    guard, v0, _, _ = run_module(module, GuardPagesStrategy())
    bounds, v1, _, _ = run_module(module, BoundsCheckStrategy())
    hfi, v2, _, _ = run_module(module, HfiStrategy())
    assert v0 == v1 == v2
    return guard, bounds, hfi


def run_images():
    grid = {}
    for compression in COMPRESSION_ROUNDS:
        for resolution in RESOLUTIONS:
            module = jpeg_decode(resolution, compression)
            guard, v0, _, _ = run_module(module, GuardPagesStrategy())
            bounds, v1, _, _ = run_module(module, BoundsCheckStrategy())
            hfi, v2, _, _ = run_module(module, HfiStrategy())
            assert v0 == v1 == v2
            grid[(compression, resolution)] = (guard, bounds, hfi)
    return grid


def test_font_rendering(benchmark):
    guard, bounds, hfi = once(benchmark, run_font)
    table = format_table(
        ["scheme", "cycles", "vs guard pages"],
        [("guard-pages", guard, "100.0%"),
         ("bounds-check", bounds, f"{100 * bounds / guard:.1f}%"),
         ("hfi", hfi, f"{100 * hfi / guard:.1f}%")],
        title=("§6.2 font rendering (paper: guard 1823 ms, "
               "bounds 2022 ms, HFI 1677 ms)"))
    emit("sec62_font_rendering", table)
    assert bounds > guard > hfi
    # paper: HFI outperforms guard pages by 8.7%
    assert 3.0 <= speedup_pct(hfi, guard) <= 15.0


def test_fig4_image_rendering(benchmark):
    grid = once(benchmark, run_images)
    rows = []
    speedups = {}
    for (compression, resolution), (guard, bounds, hfi) in grid.items():
        s = speedup_pct(hfi, guard)
        speedups[(compression, resolution)] = s
        rows.append((compression, resolution,
                     f"{100 * bounds / guard:.0f}%",
                     f"{100 * guard / guard:.0f}%",
                     f"{100 * hfi / guard:.0f}%",
                     f"+{s:.1f}%"))
    table = format_table(
        ["compression", "resolution", "bounds", "guard", "HFI",
         "HFI speedup"],
        rows,
        title=("Fig. 4 image decode, normalized to guard pages "
               "(paper: HFI 14%-37% faster)"))
    emit("fig4_image_rendering", table)

    values = list(speedups.values())
    assert min(values) >= 8.0, values     # paper floor 14%, loose band
    assert max(values) <= 45.0, values    # paper ceiling 37%
    # larger images amortize hfi_enter: speedup grows with resolution
    for compression in COMPRESSION_ROUNDS:
        assert (speedups[(compression, "1920p")]
                > speedups[(compression, "240p")])
    # more compressed (compute-heavier) images benefit more
    for resolution in RESOLUTIONS:
        assert (speedups[("best", resolution)]
                > speedups[("none", resolution)])