"""§6.3.2 — scalability of sandbox creation.

Paper: eliding guard pages lets Wasmtime create up to 256,000 1 GiB
sandboxes in a single process (full use of the address space), where
the 8 GiB guard-page scheme caps out at ~16K-32K instances.
"""

import pytest
from conftest import once

from repro.analysis import emit, format_table
from repro.os import AddressSpace, OutOfAddressSpace
from repro.params import MachineParams
from repro.wasm import GuardPagesStrategy, HfiStrategy

GIB = 1 << 30


def count_instances(strategy, va_bits, heap_bytes=GIB,
                    cap=400_000) -> int:
    params = MachineParams()
    space = AddressSpace(params, va_bits=va_bits)
    count = 0
    while count < cap:
        try:
            strategy.reserve_memory(space, heap_bytes)
        except OutOfAddressSpace:
            break
        count += 1
    return count


def run():
    results = {}
    for va_bits in (47, 48):
        results[("guard-pages", va_bits)] = count_instances(
            GuardPagesStrategy(), va_bits)
        results[("hfi", va_bits)] = count_instances(
            HfiStrategy(), va_bits)
    return results


def test_sec632_scalability(benchmark):
    results = once(benchmark, run)
    rows = [(scheme, f"{bits}-bit", f"{count:,}")
            for (scheme, bits), count in sorted(results.items())]
    table = format_table(
        ["scheme", "user VA", "max 1 GiB sandboxes"],
        rows,
        title=("§6.3.2 concurrent 1 GiB sandboxes per process "
               "(paper: 256,000 with guard pages elided; ~16K for the "
               "8 GiB scheme on a 47-bit VA)"))
    emit("sec632_scalability", table)

    # Paper's headline: 256,000 sandboxes with guards elided (48-bit VA)
    assert results[("hfi", 48)] >= 250_000
    # The 8 GiB scheme is ~8x worse at every VA width
    for bits in (47, 48):
        ratio = results[("hfi", bits)] / results[("guard-pages", bits)]
        assert ratio >= 7.5, ratio
    # and the classic 2^47 figure: ~16K instances
    assert 14_000 <= results[("guard-pages", 47)] <= 17_000