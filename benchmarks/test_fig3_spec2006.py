"""Fig. 3 — SPEC INT 2006 normalized against guard pages.

Paper: bounds checking costs 18.74%-48.34% over guard pages (median
34.67%, geomean ~34.7%); HFI runs at 92.51%-107.45% of guard pages
(median 95.88%, geomean 96.85% — a 3.25% speedup).  445.gobmk is the
one benchmark where HFI is *slower*, due to hmov's longer encodings
pressuring the i-cache.
"""

from conftest import once, run_module

from repro.analysis import emit, format_table, geomean
from repro.wasm import BoundsCheckStrategy, GuardPagesStrategy, HfiStrategy
from repro.workloads import SPEC_BENCHMARKS

SCALE = 1


def run_suite():
    table_rows = []
    bounds_ratios, hfi_ratios = {}, {}
    for name, builder in SPEC_BENCHMARKS.items():
        module = builder(SCALE)
        guard, v_guard, _, _ = run_module(module, GuardPagesStrategy())
        bounds, v_bounds, _, _ = run_module(module, BoundsCheckStrategy())
        hfi, v_hfi, _, _ = run_module(module, HfiStrategy())
        assert v_guard == v_bounds == v_hfi, f"{name}: results diverge"
        bounds_ratios[name] = bounds / guard
        hfi_ratios[name] = hfi / guard
        table_rows.append((name, guard,
                           f"{100 * bounds / guard:.1f}%",
                           f"{100 * hfi / guard:.1f}%"))
    return table_rows, bounds_ratios, hfi_ratios


def test_fig3_spec2006(benchmark):
    rows, bounds_ratios, hfi_ratios = once(benchmark, run_suite)
    gm_bounds = geomean(bounds_ratios.values())
    gm_hfi = geomean(hfi_ratios.values())
    table = format_table(
        ["benchmark", "guard-pages cycles", "bounds-check", "HFI"],
        rows,
        title=("Fig. 3: runtime normalized to guard pages "
               "(paper: bounds geomean 134.7%, HFI geomean 96.85%)"))
    table += (f"\ngeomean: bounds {100 * gm_bounds:.1f}%  "
              f"HFI {100 * gm_hfi:.1f}%")
    emit("fig3_spec2006", table)

    # Shape assertions, mirroring the paper's claims:
    assert 1.10 <= gm_bounds <= 1.50, gm_bounds     # large SFI tax
    assert 0.90 <= gm_hfi <= 1.03, gm_hfi           # HFI ~ free / faster
    # every benchmark pays something for bounds checks
    assert all(r > 1.0 for r in bounds_ratios.values())
    # HFI stays within a tight band of guard pages everywhere
    assert all(0.85 <= r <= 1.10 for r in hfi_ratios.values())
    # the gobmk i-cache effect: HFI's single slowest case
    assert hfi_ratios["445.gobmk"] > 1.0
    assert hfi_ratios["445.gobmk"] == max(hfi_ratios.values())
