"""Fig. 2 — accuracy of emulated HFI vs simulated HFI on Sightglass.

Paper: running software-emulated HFI (cpuid + absolute-base mov)
side-by-side with true HFI in gem5, per-benchmark emulation cycle
counts fall between 98% and 108% of simulation, geomean difference
1.62%.  We run both codegens on the cycle simulator and report the
same ratio per benchmark.
"""

from conftest import once, run_module

from repro.analysis import emit, format_table, geomean
from repro.wasm import HfiEmulationStrategy, HfiStrategy
from repro.workloads import SIGHTGLASS_BENCHMARKS

SCALE = 3  # amortize entry cost as the paper's longer runs do

PAPER_BAND = (0.98, 1.08)
BAND = (0.95, 1.12)  # accept a slightly wider band than the paper's


def run_suite():
    rows = []
    ratios = []
    for name, builder in SIGHTGLASS_BENCHMARKS.items():
        module = builder(SCALE)
        hfi_cycles, hfi_val, _, _ = run_module(module, HfiStrategy())
        emu_cycles, emu_val, _, _ = run_module(module,
                                               HfiEmulationStrategy())
        assert hfi_val == emu_val, f"{name}: results diverge"
        ratio = emu_cycles / hfi_cycles
        ratios.append(ratio)
        rows.append((name, hfi_cycles, emu_cycles, f"{100 * ratio:.1f}%"))
    return rows, ratios


def test_fig2_emulation_accuracy(benchmark):
    rows, ratios = once(benchmark, run_suite)
    gm_diff = abs(geomean(ratios) - 1.0) * 100
    table = format_table(
        ["benchmark", "HFI cycles", "emulated cycles", "emu/HFI"],
        rows,
        title=("Fig. 2: emulated vs simulated HFI runtime "
               f"(paper band {PAPER_BAND[0]:.0%}-{PAPER_BAND[1]:.0%}, "
               "geomean diff 1.62%)"))
    table += f"\ngeomean difference: {gm_diff:.2f}%"
    emit("fig2_emulation_accuracy", table)

    for (name, *_), ratio in zip(rows, ratios):
        assert BAND[0] <= ratio <= BAND[1], (
            f"{name}: emulation ratio {ratio:.3f} outside band {BAND}")
    assert gm_diff < 6.0
