"""§6.1 register pressure — the cost of reserving 1 or 2 registers.

Paper: on Wasmtime's Spidermonkey benchmark, reserving one register
costs 2.25% and two registers 2.40% — an approximation of the benefit
HFI gets by not pinning the heap base and bound in GPRs.

We compile a Spidermonkey stand-in — a basket of branchy, table-driven
kernels with varying register pressure — with 0, 1, and 2 artificially
reserved registers and measure the average slowdown.  (Spilling is a
step function per kernel: kernels whose locals still fit show 0%, the
register-hungry ones pay double digits; the *average* lands near the
paper's small single-digit figure.)
"""

from conftest import once, run_module

from repro.analysis import emit, format_table
from repro.wasm import NativeUnsafeStrategy
from repro.workloads.sightglass import base64, minicsv, ratelimit, switch


def run():
    rows = []
    slowdowns = {}
    for name, builder in (("switch", switch), ("base64", base64),
                          ("minicsv", minicsv), ("ratelimit", ratelimit)):
        module = builder(3)
        baseline, v0, _, _ = run_module(module, NativeUnsafeStrategy())
        cells = [name, baseline]
        for reserve in (1, 2):
            cycles, v, _, _ = run_module(module, NativeUnsafeStrategy(),
                                         reserve_extra_regs=reserve)
            assert v == v0
            slow = 100.0 * (cycles / baseline - 1.0)
            slowdowns.setdefault(reserve, []).append(slow)
            cells.append(f"+{slow:.2f}%")
        rows.append(tuple(cells))
    return rows, slowdowns


def test_sec61_register_pressure(benchmark):
    rows, slowdowns = once(benchmark, run)
    avg1 = sum(slowdowns[1]) / len(slowdowns[1])
    avg2 = sum(slowdowns[2]) / len(slowdowns[2])
    table = format_table(
        ["workload", "baseline cycles", "reserve 1 reg", "reserve 2 regs"],
        rows,
        title=("§6.1 register pressure (paper: 1 reg -> +2.25%, "
               "2 regs -> +2.40%)"))
    table += f"\naverage: 1 reg +{avg1:.2f}%, 2 regs +{avg2:.2f}%"
    emit("sec61_register_pressure", table)

    # Shape: reserving registers costs a little, monotonically.
    assert 0.0 <= avg1 <= 12.0, avg1
    assert avg1 <= avg2 <= 15.0, (avg1, avg2)