"""Fig. 5 — overhead of the native sandbox: OpenSSL in NGINX.

Paper: protecting session keys/crypto with HFI's native sandbox costs
2.9%-6.1% of throughput across file sizes; MPK (ERIM) costs 1.9%-5.3%.
HFI is slightly more expensive than MPK because each transition also
moves region metadata from memory into HFI registers.
"""

from conftest import once

from repro.analysis import emit, format_series, format_table
from repro.params import MachineParams
from repro.workloads import FILE_SIZES, NginxModel


def run(params):
    model = NginxModel(params)
    sweep = model.sweep()
    overheads = {
        scheme: [model.overhead_pct(size, scheme) for size in FILE_SIZES]
        for scheme in ("hfi", "mpk")
    }
    return model, sweep, overheads


def test_fig5_nginx(benchmark):
    params = MachineParams()
    model, sweep, overheads = once(benchmark, run, params)
    labels = [f"{s >> 10}kb" for s in FILE_SIZES]
    rows = []
    for i, label in enumerate(labels):
        rows.append((label,
                     f"{sweep['unprotected'][i]:,.0f}",
                     f"{sweep['hfi'][i]:,.0f}",
                     f"{sweep['mpk'][i]:,.0f}",
                     f"{overheads['hfi'][i]:.2f}%",
                     f"{overheads['mpk'][i]:.2f}%"))
    table = format_table(
        ["file size", "unprotected rps", "HFI rps", "MPK rps",
         "HFI ovh", "MPK ovh"],
        rows,
        title=("Fig. 5 NGINX+OpenSSL throughput "
               "(paper: HFI 2.9%-6.1% overhead, MPK 1.9%-5.3%)"))
    table += "\n" + format_series("hfi-overhead-%", labels,
                                  overheads["hfi"])
    table += "\n" + format_series("mpk-overhead-%", labels,
                                  overheads["mpk"])
    emit("fig5_nginx", table)

    # Bands, slightly widened from the paper's.
    assert all(1.5 <= o <= 7.5 for o in overheads["hfi"]), overheads
    assert all(1.0 <= o <= 6.5 for o in overheads["mpk"]), overheads
    # HFI pays a little more than MPK at every size (metadata moves).
    for hfi_o, mpk_o in zip(overheads["hfi"], overheads["mpk"]):
        assert hfi_o > mpk_o
    # sanity: per-transition HFI cost really exceeds MPK's
    assert model.switch_cost("hfi") > model.switch_cost("mpk") \
        > model.switch_cost("unprotected")