"""Ablations of the design choices DESIGN.md calls out.

1. The §4.2 single-32-bit-comparator hmov check is *exactly equivalent*
   to the golden base/bound semantics over the legal descriptor space
   (this is why large/small region constraints exist at all).
2. switch-on-exit vs serialize-every-transition: transition cost as a
   function of sandbox switches.
3. Guard-page elision: virtual address-space pressure per instance.
4. First-match vs any-match implicit-region semantics differ exactly
   when overlapping regions disagree on permissions.
"""

import random

from conftest import once

from repro.analysis import emit, format_table
from repro.core import (
    ExplicitDataRegion,
    HfiFault,
    HfiState,
    ImplicitDataRegion,
    SandboxFlags,
    hmov_check_hardware,
    hmov_effective_address,
    implicit_data_check,
)
from repro.params import MachineParams
from repro.os import AddressSpace
from repro.wasm import GuardPagesStrategy, HfiStrategy

KIB64 = 1 << 16


def _golden_ok(region, index, scale, disp):
    try:
        hmov_effective_address(region, index, scale, disp, 1, False)
        return True
    except HfiFault:
        return False


def sweep_comparator(trials=30_000, seed=7):
    """Randomized equivalence sweep: hardware comparator vs golden."""
    rng = random.Random(seed)
    mismatches = 0
    for _ in range(trials):
        if rng.random() < 0.5:
            base = rng.randrange(0, (1 << 47), KIB64)
            bound = rng.randrange(KIB64, min(1 << 30, (1 << 48) - base),
                                  KIB64)
            region = ExplicitDataRegion(base, bound, permission_read=True,
                                        is_large_region=True)
        else:
            bound = rng.randrange(1, 1 << 20)
            block = rng.randrange(0, 1 << 15) << 32
            base = block + rng.randrange(0, (1 << 32) - bound)
            region = ExplicitDataRegion(base, bound, permission_read=True,
                                        is_large_region=False)
        scale = rng.choice([1, 2, 4, 8])
        # bias offsets to straddle the boundary
        target = rng.randrange(0, 2 * region.bound + 64)
        index = target // scale
        disp = target - index * scale
        hw_ok, hw_ea = hmov_check_hardware(region, index, scale, disp)
        golden = _golden_ok(region, index, scale, disp)
        if hw_ok != golden:
            mismatches += 1
    return trials, mismatches


def transition_costs(params, switches=1000):
    """Serialize-always vs switch-on-exit for a burst of invocations."""
    serialize = HfiState(params)
    total_serialized = 0
    for _ in range(switches):
        total_serialized += serialize.enter(
            SandboxFlags(is_serialized=True))
        total_serialized += serialize.exit().cycles

    soe = HfiState(params)
    # runtime pins itself once in a serialized hybrid sandbox...
    total_soe = soe.enter(SandboxFlags(is_hybrid=True, is_serialized=True))
    for _ in range(switches):
        # ...then runs children unserialized with switch-on-exit
        total_soe += soe.enter(SandboxFlags(switch_on_exit=True))
        total_soe += soe.exit().cycles
    total_soe += soe.exit().cycles
    return total_serialized, total_soe


def va_pressure():
    params = MachineParams()
    results = {}
    for name, strategy in (("guard-pages", GuardPagesStrategy()),
                           ("hfi", HfiStrategy())):
        space = AddressSpace(params)
        strategy.reserve_memory(space, 64 * KIB64)  # a 4 MiB instance
        results[name] = space.reserved_bytes
    return results


def test_ablation_comparator_equivalence(benchmark):
    trials, mismatches = once(benchmark, sweep_comparator)
    emit("ablation_comparator",
         f"hmov hardware comparator vs golden semantics: "
         f"{trials} randomized trials, {mismatches} mismatches")
    assert mismatches == 0


def test_ablation_switch_on_exit(benchmark, params):
    serialized, soe = once(benchmark, transition_costs, params)
    saving = 100 * (1 - soe / serialized)
    emit("ablation_switch_on_exit", format_table(
        ["mode", "cycles for 1000 round trips"],
        [("serialize every enter/exit", serialized),
         ("switch-on-exit", soe)],
        title="§3.4/§4.5 switch-on-exit ablation")
        + f"\nserialization avoided: {saving:.1f}%")
    # switch-on-exit removes the per-transition drains (paper: "most
    # of this overhead")
    assert soe < serialized * 0.5


def test_ablation_guard_elision(benchmark):
    results = once(benchmark, va_pressure)
    ratio = results["guard-pages"] / results["hfi"]
    emit("ablation_guard_elision", format_table(
        ["scheme", "reserved VA for one 4 MiB instance"],
        [(k, f"{v / (1 << 30):.2f} GiB") for k, v in results.items()],
        title="§2 guard-page address-space pressure")
        + f"\nreservation ratio: {ratio:.0f}x")
    assert results["guard-pages"] >= 8 << 30   # the 8 GiB scheme
    assert ratio > 100                          # HFI reserves ~the heap


def test_ablation_region_register_renaming(benchmark, params):
    """§4.3: renaming HFI metadata registers removes the hybrid-mode
    serialization on region updates — the heap-growth hot path."""
    def grow_burst(rename):
        p = params.with_overrides(hfi_region_rename=rename)
        state = HfiState(p)
        state.enter(SandboxFlags(is_hybrid=True))
        region = ExplicitDataRegion(0x10_0000, 1 << 16,
                                    permission_read=True,
                                    permission_write=True)
        total = 0
        for i in range(1, 501):
            total += state.set_region(6, region.resize((i + 1) << 16))
        return total

    def run():
        return grow_burst(False), grow_burst(True)

    serialized, renamed = once(benchmark, run)
    emit("ablation_region_rename", format_table(
        ["metadata registers", "cycles for 500 in-sandbox grows"],
        [("architectural (serialize)", serialized),
         ("renamed (no serialize)", renamed)],
        title="§4.3 region-register renaming ablation"))
    assert renamed < serialized / 3


def test_ablation_first_match_semantics(benchmark):
    """First-match lets a runtime deny a sub-range of an allowed area
    by ordering regions — any-match could not express this."""
    wide = ImplicitDataRegion(0, 0xFFFF, permission_read=True,
                              permission_write=True)
    deny = ImplicitDataRegion(0x8000, 0xFFF, permission_read=False,
                              permission_write=False)

    def check(regions, addr):
        try:
            implicit_data_check(regions, addr, 8, False)
            return True
        except HfiFault:
            return False

    def run():
        return (check([deny, wide, None, None], 0x8100),
                check([wide, deny, None, None], 0x8100),
                check([deny, wide, None, None], 0x100))

    deny_first, allow_first, outside = once(benchmark, run)
    emit("ablation_first_match",
         "first-match: deny-listed sub-range readable? "
         f"deny-first={deny_first}, wide-first={allow_first}, "
         f"outside-deny={outside}")
    assert not deny_first      # deny region shadows the wide region
    assert allow_first         # ordering flips the decision
    assert outside             # unrelated addresses unaffected