"""Table 1 — impact of HFI Spectre protection on FaaS tail latency.

Paper: on four Wasm FaaS workloads served by the Rocket webserver,
Swivel (the fastest software Spectre mitigation) raises tail latency
by 9%-42% and bloats binaries; HFI raises tail latency by only 0%-2%
with no noticeable binary bloat.

We compile each app under Lucet-unsafe / Lucet+HFI(native sandbox) /
Lucet+Swivel, measure service cycles on the cycle simulator, and push
all three through the same offered load in the FaaS queueing model.
"""

from conftest import once, run_module

from repro.analysis import emit, format_table
from repro.params import MachineParams
from repro.runtime import FaasServer
from repro.wasm import NativeHfiStrategy, NativeUnsafeStrategy, SwivelStrategy
from repro.workloads import APP_SCALES, FAAS_APPS

SCHEMES = (
    ("Lucet(Unsafe)", NativeUnsafeStrategy),
    ("Lucet+HFI", NativeHfiStrategy),
    ("Lucet+Swivel", SwivelStrategy),
)

#: Simulated kernels stand in for full requests; one request performs
#: this many kernel invocations (documented scaling; ratios unaffected).
INVOCATIONS_PER_REQUEST = 40


def run(params):
    server = FaasServer(params=params, n_workers=2)
    table = {}
    for app, builder in FAAS_APPS.items():
        module = builder(APP_SCALES[app])
        measured = {}
        for scheme_name, strategy_cls in SCHEMES:
            cycles, value, size, _ = run_module(module, strategy_cls())
            measured[scheme_name] = (cycles * INVOCATIONS_PER_REQUEST,
                                     size, value)
        values = {m[2] for m in measured.values()}
        assert len(values) == 1, f"{app}: results diverge"

        # identical offered load for all three schemes, derived from
        # the unsafe scheme at 65% utilization (the paper fixes the
        # request stream and measures latency/throughput)
        unsafe_cycles = measured["Lucet(Unsafe)"][0]
        service_s = params.cycles_to_seconds(unsafe_cycles)
        rate = 0.55 * server.n_workers / service_s
        for scheme_name, (cycles, size, _) in measured.items():
            metrics = server.simulate(
                scheme_name, cycles, n_requests=1500,
                arrival_rate_rps=rate, binary_size=size)
            table[(app, scheme_name)] = metrics
    return table


def test_table1_faas_spectre(benchmark):
    params = MachineParams()
    table = once(benchmark, run, params)
    rows = []
    for app in FAAS_APPS:
        base = table[(app, "Lucet(Unsafe)")]
        for scheme_name, _ in SCHEMES:
            m = table[(app, scheme_name)]
            rows.append((
                app, scheme_name,
                f"{m.latency_ms():.2f}", f"{m.tail_ms():.2f}",
                f"{m.throughput_rps:.0f}", f"{m.binary_size}",
                f"{100 * (m.p99_latency_s / base.p99_latency_s - 1):+.1f}%",
            ))
    text = format_table(
        ["workload", "scheme", "avg lat (ms)", "p99 lat (ms)",
         "thruput (rps)", "bin size (B)", "tail vs unsafe"],
        rows,
        title=("Table 1: FaaS Spectre protection "
               "(paper: Swivel +9%-42% tail latency, HFI +0%-2%)"))
    emit("table1_faas_spectre", text)

    for app in FAAS_APPS:
        base = table[(app, "Lucet(Unsafe)")]
        hfi = table[(app, "Lucet+HFI")]
        swivel = table[(app, "Lucet+Swivel")]
        hfi_tail = hfi.p99_latency_s / base.p99_latency_s - 1
        swivel_tail = swivel.p99_latency_s / base.p99_latency_s - 1
        # HFI: 0%-2% band, slightly widened
        assert -0.01 <= hfi_tail <= 0.12, (app, hfi_tail)
        # Swivel costs noticeably more than HFI on the branchy apps
        assert swivel_tail >= hfi_tail, (app, swivel_tail, hfi_tail)
        # binary sizes: Swivel bloats, HFI adds only the entry stub
        assert swivel.binary_size > base.binary_size
        assert hfi.binary_size - base.binary_size < 128
    # at least half the apps show Swivel's tail blowup >= 9%
    blowups = [
        table[(app, "Lucet+Swivel")].p99_latency_s
        / table[(app, "Lucet(Unsafe)")].p99_latency_s - 1
        for app in FAAS_APPS
    ]
    assert sum(1 for b in blowups if b >= 0.08) >= 2, blowups