"""§6.1 heap growth — mprotect vs HFI region update.

Paper: growing a Wasm heap from one page to 4 GiB in 64 KiB increments
takes 10.92 s through Wasmtime's mprotect path and 370 ms with HFI's
hfi_set_region — a ~30x difference.
"""

from conftest import once

from repro.analysis import emit, format_table
from repro.params import MachineParams
from repro.wasm import GuardPagesStrategy, HfiStrategy, WASM_PAGE
from repro.os import AddressSpace, Prot

TARGET_BYTES = 4 << 30
STEPS = TARGET_BYTES // WASM_PAGE  # 65,536 grow calls


def grow_with(strategy_cls, params):
    space = AddressSpace(params)
    strategy = strategy_cls()
    heap_base, _ = strategy.reserve_memory(space, WASM_PAGE)
    total = 0
    size = WASM_PAGE
    while size < TARGET_BYTES:
        total += params.memory_grow_bookkeeping_cycles
        total += strategy.grow_cost(space, heap_base, size,
                                    size + WASM_PAGE, params)
        size += WASM_PAGE
    return total


def test_sec61_heap_growth(benchmark):
    params = MachineParams()

    def run():
        mprotect_cycles = grow_with(GuardPagesStrategy, params)
        hfi_cycles = grow_with(HfiStrategy, params)
        return mprotect_cycles, hfi_cycles

    mprotect_cycles, hfi_cycles = once(benchmark, run)
    ratio = mprotect_cycles / hfi_cycles
    table = format_table(
        ["mechanism", "total cycles", "modelled seconds"],
        [("mprotect (guard pages)", mprotect_cycles,
          f"{params.cycles_to_seconds(mprotect_cycles):.3f}"),
         ("hfi_set_region", hfi_cycles,
          f"{params.cycles_to_seconds(hfi_cycles):.3f}")],
        title=("§6.1 heap growth, 1 page -> 4 GiB in 64 KiB steps "
               "(paper: 10.92 s vs 370 ms, ~30x)"))
    table += f"\nspeedup: {ratio:.1f}x"
    emit("sec61_heap_growth", table)

    assert 15 <= ratio <= 60, ratio   # the paper's ~30x, loosely banded