"""§6.4.1 — trapping syscalls: Seccomp-bpf vs HFI.

Paper: a benchmark that opens, reads, and closes a file 100,000 times
runs 2.1% slower when the syscalls are interposed with Seccomp-bpf
(ERIM's mechanism) than with HFI's decode-stage redirect.
"""

from conftest import once

from repro.analysis import emit, format_table
from repro.os import FileSystem, Kernel, SeccompAction, SeccompFilter, Sys
from repro.params import MachineParams

ITERATIONS = 100_000


def run(params):
    kernel = Kernel(params, FileSystem({"bench.dat": b"x" * 4096}))
    Kernel.register_name(7, "bench.dat")

    def one_pass(proc, per_syscall_extra):
        total = 0
        res = kernel.syscall(proc, Sys.OPEN, 7)
        total += res.cycles + per_syscall_extra
        fd = res.value
        res = kernel.syscall(proc, Sys.READ, fd, 4096)
        total += res.cycles + per_syscall_extra
        res = kernel.syscall(proc, Sys.CLOSE, fd)
        total += res.cycles + per_syscall_extra
        return total

    # --- HFI: the syscall is converted into a jump to the exit
    # handler (1 cycle in decode), the handler performs the call and
    # hfi_reenters — all in user space (§4.4).
    hfi_proc = kernel.spawn()
    hfi_extra = (params.hfi_syscall_check_cycles
                 + params.hfi_exit_cycles
                 + params.hfi_enter_cycles)
    hfi_one = one_pass(hfi_proc, hfi_extra)

    # --- Seccomp-bpf: every syscall runs the BPF program; supervised
    # calls divert to the user-space supervisor and are resumed.
    seccomp_proc = kernel.spawn()
    seccomp_proc.seccomp = SeccompFilter.interpose_all(
        params, supervised=(), n_padding_rules=12)
    action, filter_cost = seccomp_proc.seccomp.evaluate(int(Sys.OPEN))
    assert action is SeccompAction.ALLOW
    seccomp_one = one_pass(seccomp_proc, 0)

    hfi_total = hfi_one * ITERATIONS
    seccomp_total = seccomp_one * ITERATIONS
    return hfi_total, seccomp_total, filter_cost


def test_sec641_syscall_interposition(benchmark):
    params = MachineParams()
    hfi_total, seccomp_total, filter_cost = once(benchmark, run, params)
    overhead = 100.0 * (seccomp_total / hfi_total - 1.0)
    table = format_table(
        ["mechanism", "total cycles (100k iterations)", "modelled s"],
        [("HFI decode-stage redirect", hfi_total,
          f"{params.cycles_to_seconds(hfi_total):.4f}"),
         ("Seccomp-bpf filter", seccomp_total,
          f"{params.cycles_to_seconds(seccomp_total):.4f}")],
        title=("§6.4.1 open/read/close x100,000 "
               "(paper: seccomp-bpf 2.1% over HFI)"))
    table += (f"\nper-syscall BPF cost: {filter_cost} cycles; "
              f"seccomp overhead: {overhead:.2f}%")
    emit("sec641_syscall_interposition", table)

    assert 0.5 <= overhead <= 5.0, overhead   # paper: 2.1%